// ModelRegistry: the committed-artifact store of the multi-model marketplace.
//
// Every layer below this one serves exactly ONE committed model: BatchVerifier,
// VerificationService, and the sharded Coordinator are all constructed from a single
// (Model, ModelCommitment, ThresholdSet) triple. The paper's actual setting is a
// marketplace where many provers commit many models concurrently; the registry is
// the directory that makes that representable. Each entry pins one model's
// artifacts — the graph + weights, the Merkle commitment (r_w, r_g, r_e), the
// calibrated thresholds — and that model's own Coordinator shard group, so claims,
// gas, clocks, and ledger entries are per-model-scoped by construction (the
// coordinator stamps its ModelId into every ClaimRecord it issues).
//
// Lifecycle state machine (forward-only, except the explicit re-serve edge):
//
//   Register ──▶ kRegistered ──Commit──▶ kCommitted ──Serve──▶ kServing
//                                                       ▲          │ Drain
//                                              re-Serve │          ▼
//                                       kRetired ◀──Retire── kDraining
//
//   * kRegistered: the model artifact exists but nothing is committed — submissions
//     against it are shed (kNotCommitted) because there is no commitment to verify
//     claims against.
//   * kCommitted: commitment + thresholds posted, the per-model coordinator exists,
//     but no serving capacity is attached yet (kNotServing).
//   * kServing: a ServingGateway attached a VerificationService; submissions route.
//   * kDraining: admission is closed; every in-flight claim still gets its verdict.
//   * kRetired: the service is torn down. The entry itself is never deleted — the
//     coordinator's ledger and claim records stay readable forever (audits outlive
//     serving), and ids are never reused. A retired model may be re-served: a new
//     service generation attaches over the SAME coordinator, so claim ids and the
//     ledger continue where the previous generation stopped.
//
// The registry owns passive state + the lifecycle state machine; the
// ServingGateway (serving_gateway.h) owns the active serving resources and drives
// the kServing/kDraining/kRetired transitions. Entries are heap-pinned
// (unique_ptr, append-only vector), so references handed to services stay valid
// for the registry's lifetime regardless of later registrations.

#ifndef TAO_SRC_REGISTRY_MODEL_REGISTRY_H_
#define TAO_SRC_REGISTRY_MODEL_REGISTRY_H_

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/models/model_zoo.h"
#include "src/protocol/commitment.h"
#include "src/protocol/coordinator.h"

namespace tao {

enum class ModelLifecycle {
  kRegistered,  // artifact present, nothing committed
  kCommitted,   // commitment + thresholds + coordinator exist; not serving yet
  kServing,     // a gateway routes submissions to this model
  kDraining,    // admission closed; in-flight verdicts still delivering
  kRetired,     // service torn down; ledger/claims stay readable
};

const char* ModelLifecycleName(ModelLifecycle state);

// Per-model coordinator configuration, fixed at Commit time (the shard count is the
// model's resolve-lane parallelism; see docs/coordinator.md).
struct ModelCommitConfig {
  GasSchedule gas;
  uint64_t round_timeout = 10;
  size_t coordinator_shards = 1;
  // Coordinator durability (docs/durability.md). A non-empty `directory` is treated
  // as the deployment ROOT: each model's coordinator logs under
  // `<directory>/model-<id>`, so one configured root serves every model without
  // collisions, and re-committing after a restart recovers that model's ledger and
  // claims from its own subdirectory. Empty (default) = in-memory only.
  DurabilityOptions durability;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Phase 0a: the prover uploads the model artifact. Ids are dense from 1, never
  // reused. The registry's copy is the one every later layer references (the graph
  // is shared storage, so this is cheap).
  ModelId Register(Model model);

  // Phase 0b: the prover posts the Merkle commitment and calibrated thresholds;
  // the model's own coordinator shard group is created here, stamped with the
  // model id. Legal only from kRegistered.
  void Commit(ModelId id, ModelCommitment commitment, ThresholdSet thresholds,
              ModelCommitConfig config = {});

  // --- reads (any thread) -------------------------------------------------------------
  bool contains(ModelId id) const;
  ModelLifecycle state(ModelId id) const;
  size_t size() const;
  std::vector<ModelId> ids() const;

  // Valid from kRegistered on. The reference is pinned for the registry's lifetime.
  const Model& model(ModelId id) const;
  // Valid from kCommitted on (TAO_CHECK otherwise).
  const ModelCommitment& commitment(ModelId id) const;
  const ThresholdSet& thresholds(ModelId id) const;
  Coordinator& coordinator(ModelId id) const;

  // --- lifecycle transitions (driven by the ServingGateway) --------------------------
  // Each checks the legal predecessor and aborts on a protocol violation, except
  // MarkDraining which is idempotent (a second Drain is a no-op, matching
  // VerificationService::Drain).
  void MarkServing(ModelId id);    // kCommitted | kRetired (re-serve) -> kServing
  void MarkDraining(ModelId id);   // kServing | kDraining -> kDraining
  void MarkRetired(ModelId id);    // kDraining -> kRetired

 private:
  struct Entry {
    Model model;
    ModelLifecycle state = ModelLifecycle::kRegistered;
    std::optional<ModelCommitment> commitment;
    std::optional<ThresholdSet> thresholds;
    std::unique_ptr<Coordinator> coordinator;
  };

  Entry& entry(ModelId id);
  const Entry& entry(ModelId id) const;

  // Guards the entry vector and every entry's lifecycle state. Entry payloads
  // (model/commitment/thresholds/coordinator) are written once — at Register/Commit
  // — and immutable afterwards, so post-Commit readers share-lock only to resolve
  // the pointer.
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // id = index + 1
};

}  // namespace tao

#endif  // TAO_SRC_REGISTRY_MODEL_REGISTRY_H_
