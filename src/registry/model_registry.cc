#include "src/registry/model_registry.h"

#include <utility>

#include "src/util/check.h"

namespace tao {

const char* ModelLifecycleName(ModelLifecycle state) {
  switch (state) {
    case ModelLifecycle::kRegistered:
      return "registered";
    case ModelLifecycle::kCommitted:
      return "committed";
    case ModelLifecycle::kServing:
      return "serving";
    case ModelLifecycle::kDraining:
      return "draining";
    case ModelLifecycle::kRetired:
      return "retired";
  }
  return "unknown";
}

ModelId ModelRegistry::Register(Model model) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto entry = std::make_unique<Entry>();
  entry->model = std::move(model);
  entries_.push_back(std::move(entry));
  return static_cast<ModelId>(entries_.size());
}

void ModelRegistry::Commit(ModelId id, ModelCommitment commitment,
                           ThresholdSet thresholds, ModelCommitConfig config) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& e = entry(id);
  TAO_CHECK(e.state == ModelLifecycle::kRegistered)
      << "model " << id << " cannot commit from state " << ModelLifecycleName(e.state);
  e.commitment.emplace(std::move(commitment));
  e.thresholds.emplace(std::move(thresholds));
  // Per-model durability directory under the configured root; a coordinator never
  // shares files with another model's. Recovery failure aborts loudly here (null
  // status): a marketplace that cannot trust its recovered ledger must not serve.
  DurabilityOptions durability = config.durability;
  if (!durability.directory.empty()) {
    durability.directory += "/model-" + std::to_string(id);
  }
  e.coordinator =
      std::make_unique<Coordinator>(config.gas, config.round_timeout,
                                    config.coordinator_shards, id, std::move(durability));
  e.state = ModelLifecycle::kCommitted;
}

bool ModelRegistry::contains(ModelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return id >= 1 && id <= entries_.size();
}

ModelLifecycle ModelRegistry::state(ModelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entry(id).state;
}

size_t ModelRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

std::vector<ModelId> ModelRegistry::ids() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<ModelId> ids;
  ids.reserve(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    ids.push_back(static_cast<ModelId>(i + 1));
  }
  return ids;
}

const Model& ModelRegistry::model(ModelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entry(id).model;
}

const ModelCommitment& ModelRegistry::commitment(ModelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Entry& e = entry(id);
  TAO_CHECK(e.commitment.has_value()) << "model " << id << " has no commitment yet";
  return *e.commitment;
}

const ThresholdSet& ModelRegistry::thresholds(ModelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Entry& e = entry(id);
  TAO_CHECK(e.thresholds.has_value()) << "model " << id << " has no thresholds yet";
  return *e.thresholds;
}

Coordinator& ModelRegistry::coordinator(ModelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Entry& e = entry(id);
  TAO_CHECK(e.coordinator != nullptr) << "model " << id << " has no coordinator yet";
  return *e.coordinator;
}

void ModelRegistry::MarkServing(ModelId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& e = entry(id);
  // kRetired -> kServing is the re-serve path: a NEW service attaches over the
  // model's persistent coordinator, so claim ids and the ledger continue where
  // the previous serving generation stopped.
  TAO_CHECK(e.state == ModelLifecycle::kCommitted ||
            e.state == ModelLifecycle::kRetired)
      << "model " << id << " cannot serve from state " << ModelLifecycleName(e.state);
  e.state = ModelLifecycle::kServing;
}

void ModelRegistry::MarkDraining(ModelId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& e = entry(id);
  TAO_CHECK(e.state == ModelLifecycle::kServing ||
            e.state == ModelLifecycle::kDraining)
      << "model " << id << " cannot drain from state " << ModelLifecycleName(e.state);
  e.state = ModelLifecycle::kDraining;
}

void ModelRegistry::MarkRetired(ModelId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& e = entry(id);
  TAO_CHECK(e.state == ModelLifecycle::kDraining)
      << "model " << id << " cannot retire from state " << ModelLifecycleName(e.state);
  e.state = ModelLifecycle::kRetired;
}

ModelRegistry::Entry& ModelRegistry::entry(ModelId id) {
  TAO_CHECK(id >= 1 && id <= entries_.size()) << "unknown model " << id;
  return *entries_[static_cast<size_t>(id - 1)];
}

const ModelRegistry::Entry& ModelRegistry::entry(ModelId id) const {
  TAO_CHECK(id >= 1 && id <= entries_.size()) << "unknown model " << id;
  return *entries_[static_cast<size_t>(id - 1)];
}

}  // namespace tao
