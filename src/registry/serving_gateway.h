// ServingGateway: the routing front door of the multi-model marketplace.
//
// The gateway accepts submissions tagged with a ModelId, validates them against the
// ModelRegistry's lifecycle state machine — unknown, not-yet-committed, not-serving,
// draining, and retired models are shed with DISTINCT reject codes so open-loop
// clients can tell a typo from a deploy in progress — and routes accepted claims to
// that model's own VerificationService. Per-model isolation and shared compute:
//
//   * each served model gets its own VerificationService over its own Coordinator
//     shard group, queue, BatchFormer, resolve lanes, and MetricsRegistry, so one
//     model's dispute storm never perturbs another model's verdicts, gas, ledger,
//     or claim ids (the per-model determinism argument of docs/registry.md);
//   * all services SHARE the one process-wide runtime ThreadPool (heavy kernels run
//     through ThreadPool::Shared(); an idle model's worker/lane threads just block
//     on their queue, costing ~zero CPU and no pool capacity);
//   * one GLOBAL arena memory budget is apportioned across models by queue
//     pressure: every `rebalance_interval` accepted submissions the gateway
//     re-splits `total_memory_budget_bytes` across serving models proportional to
//     1 + queue_depth (floored at `min_model_budget_bytes`), so a hot model's
//     BatchFormer can form wide cohorts while an idle model's budget collapses to
//     the floor. Budgets only shape batch sizing — outcomes are
//     batch-composition-independent — so rebalancing is determinism-free.
//
// With a registry containing exactly one model, the gateway adds only a routing
// table lookup in front of the PR-4 VerificationService path: verdicts, gas,
// digests, claim ids, and the ledger are bitwise identical to it.

#ifndef TAO_SRC_REGISTRY_SERVING_GATEWAY_H_
#define TAO_SRC_REGISTRY_SERVING_GATEWAY_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/rpc_server.h"
#include "src/observability/http_endpoint.h"
#include "src/registry/model_registry.h"
#include "src/service/verification_service.h"

namespace tao {

// Outcome of one gateway admission attempt. Everything except kAccepted is a shed
// with no ticket; the codes mirror the registry lifecycle so clients can react
// (retry later vs. fix the id vs. give up).
enum class GatewayStatus {
  kAccepted,
  kUnknownModel,   // id was never registered
  kNotCommitted,   // registered, but no commitment/thresholds posted yet
  kNotServing,     // committed, but no serving capacity attached yet
  kDraining,       // the model is draining; admission closed
  kRetired,        // the model is retired; admission closed forever
  kOverloaded,     // the model's service shed it (queue full or latency SLO)
  // Cardinality sentinel, never a value. The wire mapping in src/net/frame.cc
  // static_asserts against it so a new status cannot ship without a WireStatus.
  kStatusCount,
};

const char* GatewayStatusName(GatewayStatus status);

struct GatewaySubmitResult {
  GatewayStatus status = GatewayStatus::kUnknownModel;
  // Non-null iff status == kAccepted.
  std::shared_ptr<ClaimTicket> ticket;

  bool accepted() const { return status == GatewayStatus::kAccepted; }
};

struct GatewayOptions {
  // Global arena budget split across serving models: every model gets the floor
  // below, and the remainder is apportioned by queue pressure, so the per-model
  // BatchFormer ceilings sum to max(total, serving_models * floor) up to rounding.
  int64_t total_memory_budget_bytes = 512ll << 20;
  // Floor below which no serving model's share may fall — a cold model must still
  // be able to form a minimal cohort the moment traffic arrives.
  int64_t min_model_budget_bytes = 16ll << 20;
  // Re-apportion every this many accepted submissions (0 = only on serve/drain
  // transitions). The cadence is a freshness/overhead knob only; budgets never
  // affect outcomes.
  int64_t rebalance_interval = 64;
  // HTTP monitoring endpoint (off by default). When enabled, the gateway serves
  // /metrics, /snapshot, /traces, and /healthz over its own NamedCounters plus the
  // process ResourceTracker, and turns span tracing on for its lifetime.
  MonitoringOptions monitoring;
  // Framed TCP/RPC front-end (off by default; docs/net.md). When enabled, remote
  // submitters reach Submit over the wire, verdicts push back on their
  // connections, and `net/...` counters join the gateway's NamedCounters. When
  // monitoring is ALSO enabled, both servers share one epoll dispatcher thread.
  RpcServerOptions rpc;
  // Pin the shared runtime pool's workers to cores (round-robin over
  // hardware_concurrency; TAO_DISABLE_PINNING overrides; no-op on 1-core hosts).
  // Placement only — outcomes never depend on it. When monitoring is also enabled
  // the placement is exported as one `worker/<n>/core` gauge per pool worker.
  bool pin_workers = false;
};

// Per-model slice of a gateway metrics snapshot.
struct GatewayModelMetrics {
  ModelId id = 0;
  std::string name;                 // Model::name, for operator display
  ModelLifecycle state = ModelLifecycle::kRegistered;
  int64_t memory_budget_bytes = 0;  // current apportioned share (0 = never served)
  MetricsSnapshot service;          // zeroed when the model never served
};

struct GatewaySnapshot {
  std::vector<GatewayModelMetrics> models;
  // Cross-model fold of the per-model service snapshots (AggregateSnapshots).
  MetricsSnapshot aggregate;
  // Gateway-level shed counters (submissions that never reached a service).
  int64_t rejected_unknown = 0;
  int64_t rejected_not_committed = 0;
  int64_t rejected_not_serving = 0;
  int64_t rejected_draining = 0;
  int64_t rejected_retired = 0;

  // Flattened namespaced counters: "model/<id>/..." per model, "aggregate/..." for
  // the fold, "gateway/rejected/..." for the shed counters. Names are collision-free
  // across models by construction (the id is part of the scope).
  std::vector<NamedCounter> NamedCounters() const;
};

class ServingGateway {
 public:
  // `registry` outlives the gateway. Committed entries are not served until
  // Serve() attaches capacity.
  explicit ServingGateway(ModelRegistry& registry, GatewayOptions options = {});
  // Drains and tears down every still-serving model.
  ~ServingGateway();

  ServingGateway(const ServingGateway&) = delete;
  ServingGateway& operator=(const ServingGateway&) = delete;

  // kCommitted -> kServing: attaches a VerificationService over the entry's
  // model/commitment/thresholds/coordinator. `options.batching.memory_budget_bytes`
  // is overridden by the gateway's apportionment.
  void Serve(ModelId id, ServiceOptions options = {});

  // Validates `id` against the lifecycle, then forwards to the model's service.
  // Blocking admission (kBlock) blocks here, exactly as on the single-model path.
  GatewaySubmitResult Submit(ModelId id, BatchClaim claim, uint64_t submitter = 0);

  // kServing -> kDraining: closes the model's admission and blocks until every
  // accepted claim has its verdict delivered. Idempotent.
  void Drain(ModelId id);
  // kDraining -> kRetired: tears the service down (its final metrics snapshot is
  // preserved). The model's coordinator — ledger, claims, gas — stays readable
  // through the registry.
  void Retire(ModelId id);
  // Drains every serving model (retire is still explicit, per model).
  void DrainAll();

  // Live per-model metrics (the model must have been served at some point).
  MetricsSnapshot model_metrics(ModelId id) const;
  // Full per-model + aggregate snapshot; callable any time from any thread.
  GatewaySnapshot metrics() const;

  // Number of models currently in kServing.
  size_t serving_count() const;
  // Current apportioned budget of one serving model (testing/ops visibility).
  int64_t model_memory_budget(ModelId id) const;

  // Pure apportionment rule (exposed for tests): every share gets `floor`, and
  // the remainder above N*floor is split proportionally by weight. Weights must
  // be positive.
  static std::vector<int64_t> ApportionBudget(int64_t total, int64_t floor,
                                              const std::vector<int64_t>& weights);

  // The embedded monitoring endpoint; null unless GatewayOptions::monitoring
  // enabled it. Lives exactly as long as the gateway.
  MonitoringServer* monitoring() { return monitoring_.get(); }

  // The RPC front-end; null unless GatewayOptions::rpc enabled it.
  RpcServer* rpc() { return rpc_.get(); }

 private:
  struct ServingSlot {
    std::shared_ptr<VerificationService> service;  // null once retired
    int64_t memory_budget_bytes = 0;
    MetricsSnapshot final_metrics;  // captured at Retire
    bool ever_served = false;
  };

  // Re-splits the global budget across serving models by live queue pressure.
  void ApportionBudgetsLocked();
  std::shared_ptr<VerificationService> service_for(ModelId id) const;

  ModelRegistry& registry_;
  const GatewayOptions options_;
  // One loop thread for all of the gateway's network traffic (RPC + monitoring);
  // created when either server is enabled. Declared before the servers so it is
  // destroyed after them.
  std::shared_ptr<Dispatcher> net_dispatcher_;
  std::unique_ptr<RpcServer> rpc_;                // null when disabled
  std::unique_ptr<MonitoringServer> monitoring_;  // null when disabled
  size_t pool_gauge_handle_ = 0;
  std::vector<size_t> core_gauge_handles_;  // worker/<n>/core, when pinning+monitoring

  // Guards slots_ (the routing table). Submit share-locks only long enough to copy
  // the service pointer; blocking admission happens outside the lock, so a stalled
  // submitter never wedges Serve/Drain/Retire on other models.
  mutable std::shared_mutex mu_;
  std::unordered_map<ModelId, ServingSlot> slots_;

  std::atomic<int64_t> accepted_since_rebalance_{0};
  std::atomic<int64_t> rejected_unknown_{0};
  std::atomic<int64_t> rejected_not_committed_{0};
  std::atomic<int64_t> rejected_not_serving_{0};
  std::atomic<int64_t> rejected_draining_{0};
  std::atomic<int64_t> rejected_retired_{0};
};

}  // namespace tao

#endif  // TAO_SRC_REGISTRY_SERVING_GATEWAY_H_
