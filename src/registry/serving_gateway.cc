#include "src/registry/serving_gateway.h"

#include <algorithm>
#include <utility>

#include "src/observability/resource_tracker.h"
#include "src/runtime/thread_pool.h"
#include "src/util/check.h"

namespace tao {

const char* GatewayStatusName(GatewayStatus status) {
  switch (status) {
    case GatewayStatus::kAccepted:
      return "accepted";
    case GatewayStatus::kUnknownModel:
      return "unknown_model";
    case GatewayStatus::kNotCommitted:
      return "not_committed";
    case GatewayStatus::kNotServing:
      return "not_serving";
    case GatewayStatus::kDraining:
      return "draining";
    case GatewayStatus::kRetired:
      return "retired";
    case GatewayStatus::kOverloaded:
      return "overloaded";
    case GatewayStatus::kStatusCount:
      break;  // sentinel, never a value
  }
  return "unknown";
}

std::vector<NamedCounter> GatewaySnapshot::NamedCounters() const {
  std::vector<NamedCounter> counters;
  for (const GatewayModelMetrics& model : models) {
    std::vector<NamedCounter> scoped =
        ::tao::NamedCounters(model.service, "model/" + std::to_string(model.id));
    counters.insert(counters.end(), scoped.begin(), scoped.end());
    counters.push_back({"model/" + std::to_string(model.id) + "/memory_budget_bytes",
                        static_cast<double>(model.memory_budget_bytes)});
  }
  std::vector<NamedCounter> agg = ::tao::NamedCounters(aggregate, "aggregate");
  counters.insert(counters.end(), agg.begin(), agg.end());
  counters.push_back({"gateway/rejected/unknown_model", static_cast<double>(rejected_unknown)});
  counters.push_back(
      {"gateway/rejected/not_committed", static_cast<double>(rejected_not_committed)});
  counters.push_back(
      {"gateway/rejected/not_serving", static_cast<double>(rejected_not_serving)});
  counters.push_back({"gateway/rejected/draining", static_cast<double>(rejected_draining)});
  counters.push_back({"gateway/rejected/retired", static_cast<double>(rejected_retired)});
  return counters;
}

ServingGateway::ServingGateway(ModelRegistry& registry, GatewayOptions options)
    : registry_(registry), options_(options) {
  TAO_CHECK(options_.total_memory_budget_bytes > 0);
  TAO_CHECK(options_.min_model_budget_bytes > 0);
  if (options_.pin_workers) {
    ThreadPool::Shared().PinWorkers();
  }
  if (options_.rpc.enabled || options_.monitoring.enabled) {
    DispatcherOptions dispatcher_options;
    dispatcher_options.thread_role = options_.rpc.enabled ? "net_poll" : "monitoring";
    dispatcher_options.max_outbound_bytes = options_.rpc.max_outbound_bytes;
    net_dispatcher_ = std::make_shared<Dispatcher>(dispatcher_options);
  }
  if (options_.rpc.enabled) {
    rpc_ = std::make_unique<RpcServer>(*this, registry_, options_.rpc, net_dispatcher_);
  }
  if (options_.monitoring.enabled) {
    pool_gauge_handle_ = ResourceTracker::Get().RegisterGauge(
        "resource/pool_queue_depth",
        [] { return static_cast<double>(ThreadPool::Shared().queue_depth()); });
    if (options_.pin_workers) {
      // One placement gauge per pool worker: -1 while unpinned (1-core host or
      // TAO_DISABLE_PINNING), otherwise the core index the worker is affined to.
      const int workers = ThreadPool::Shared().num_workers();
      core_gauge_handles_.reserve(static_cast<size_t>(workers));
      for (int i = 0; i < workers; ++i) {
        core_gauge_handles_.push_back(ResourceTracker::Get().RegisterGauge(
            "worker/" + std::to_string(i) + "/core",
            [i] { return static_cast<double>(ThreadPool::Shared().worker_core(i)); }));
      }
    }
    monitoring_ = std::make_unique<MonitoringServer>(
        options_.monitoring,
        [this] {
          std::vector<NamedCounter> counters = metrics().NamedCounters();
          if (rpc_ != nullptr) {
            std::vector<NamedCounter> net = rpc_->Counters();
            counters.insert(counters.end(), net.begin(), net.end());
          }
          return counters;
        },
        net_dispatcher_);
  }
}

ServingGateway::~ServingGateway() {
  // Endpoint first: its handler thread calls back into metrics() (and rpc_'s
  // counters), so it must be gone before any teardown below. The RPC front-end
  // next: its pump calls Submit on this gateway, so it must stop while every
  // service is still alive.
  monitoring_.reset();
  rpc_.reset();
  if (pool_gauge_handle_ != 0) {
    ResourceTracker::Get().UnregisterGauge(pool_gauge_handle_);
  }
  for (const size_t handle : core_gauge_handles_) {
    ResourceTracker::Get().UnregisterGauge(handle);
  }
  DrainAll();
  // Retire every still-attached model (drained above, so teardown is prompt).
  // Going through Retire — not just resetting the slots — also moves the registry
  // to kRetired: the registry outlives the gateway, and a model stranded in
  // kDraining could never be re-served by a later gateway generation.
  std::vector<ModelId> attached;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [id, slot] : slots_) {
      if (slot.service != nullptr) {
        attached.push_back(id);
      }
    }
  }
  std::sort(attached.begin(), attached.end());
  for (const ModelId id : attached) {
    Retire(id);
  }
}

void ServingGateway::Serve(ModelId id, ServiceOptions options) {
  // Cheap pre-check so an obviously illegal Serve fails before the (expensive)
  // service construction; MarkServing below is the authoritative gate.
  const ModelLifecycle state = registry_.state(id);
  TAO_CHECK(state == ModelLifecycle::kCommitted || state == ModelLifecycle::kRetired)
      << "model " << id << " cannot serve from state " << ModelLifecycleName(state);
  auto service = std::make_shared<VerificationService>(
      registry_.model(id), registry_.commitment(id), registry_.thresholds(id),
      registry_.coordinator(id), std::move(options));
  // Slot first, THEN the state flip — both inside the routing lock. A concurrent
  // Submit that observes kServing is therefore guaranteed to find the service in
  // the table (it could otherwise race into a spurious "retired" reject while the
  // model was coming online).
  std::unique_lock<std::shared_mutex> lock(mu_);
  ServingSlot& slot = slots_[id];
  TAO_CHECK(slot.service == nullptr) << "model " << id << " already has a service";
  slot.service = std::move(service);
  slot.ever_served = true;
  registry_.MarkServing(id);
  ApportionBudgetsLocked();
}

GatewaySubmitResult ServingGateway::Submit(ModelId id, BatchClaim claim,
                                           uint64_t submitter) {
  GatewaySubmitResult result;
  if (!registry_.contains(id)) {
    rejected_unknown_.fetch_add(1);
    result.status = GatewayStatus::kUnknownModel;
    return result;
  }
  // Lifecycle gate. The state can move concurrently (a Drain racing this submit);
  // the service's own closed-queue rejection backstops the race below.
  switch (registry_.state(id)) {
    case ModelLifecycle::kRegistered:
      rejected_not_committed_.fetch_add(1);
      result.status = GatewayStatus::kNotCommitted;
      return result;
    case ModelLifecycle::kCommitted:
      rejected_not_serving_.fetch_add(1);
      result.status = GatewayStatus::kNotServing;
      return result;
    case ModelLifecycle::kDraining:
      rejected_draining_.fetch_add(1);
      result.status = GatewayStatus::kDraining;
      return result;
    case ModelLifecycle::kRetired:
      rejected_retired_.fetch_add(1);
      result.status = GatewayStatus::kRetired;
      return result;
    case ModelLifecycle::kServing:
      break;
  }
  const std::shared_ptr<VerificationService> service = service_for(id);
  if (service == nullptr) {
    // Unreachable by construction (Serve publishes the slot before kServing, and
    // Retire only runs from kDraining), but kept defensive: "no capacity right
    // now, retry later" is the least damaging answer if it ever fires.
    rejected_not_serving_.fetch_add(1);
    result.status = GatewayStatus::kNotServing;
    return result;
  }
  // Outside the routing lock: blocking admission may park here without wedging
  // Serve/Drain/Retire calls for other models.
  result.ticket = service->Submit(std::move(claim), submitter);
  if (result.ticket == nullptr) {
    // The service shed it: queue full (kReject), over the latency SLO, or a drain
    // closed the queue after our state read.
    if (registry_.state(id) == ModelLifecycle::kServing) {
      result.status = GatewayStatus::kOverloaded;
    } else {
      rejected_draining_.fetch_add(1);
      result.status = GatewayStatus::kDraining;
    }
    return result;
  }
  result.status = GatewayStatus::kAccepted;
  if (options_.rebalance_interval > 0 &&
      accepted_since_rebalance_.fetch_add(1) + 1 >= options_.rebalance_interval) {
    accepted_since_rebalance_.store(0);
    std::unique_lock<std::shared_mutex> lock(mu_);
    ApportionBudgetsLocked();
  }
  return result;
}

void ServingGateway::Drain(ModelId id) {
  const ModelLifecycle state = registry_.state(id);
  if (state == ModelLifecycle::kDraining || state == ModelLifecycle::kRetired) {
    // Idempotent: a parallel drain already ran (or is running; service->Drain
    // below is itself idempotent and blocking).
    if (state == ModelLifecycle::kRetired) {
      return;
    }
  } else {
    registry_.MarkDraining(id);
  }
  const std::shared_ptr<VerificationService> service = service_for(id);
  if (service != nullptr) {
    service->Drain();  // blocks until every accepted claim delivered its verdict
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  ApportionBudgetsLocked();
}

void ServingGateway::Retire(ModelId id) {
  registry_.MarkRetired(id);  // aborts unless kDraining — drain-before-retire
  std::shared_ptr<VerificationService> service;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto it = slots_.find(id);
    TAO_CHECK(it != slots_.end()) << "retiring model " << id << " that never served";
    it->second.final_metrics = it->second.service->metrics();
    it->second.memory_budget_bytes = 0;
    service = std::move(it->second.service);
    it->second.service = nullptr;
  }
  // Destroy outside the routing lock (joins the service threads). Drain already
  // ran, so this is prompt.
  service.reset();
}

void ServingGateway::DrainAll() {
  std::vector<ModelId> serving;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [id, slot] : slots_) {
      if (slot.service != nullptr) {
        serving.push_back(id);
      }
    }
  }
  std::sort(serving.begin(), serving.end());
  for (const ModelId id : serving) {
    Drain(id);
  }
}

MetricsSnapshot ServingGateway::model_metrics(ModelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = slots_.find(id);
  TAO_CHECK(it != slots_.end() && it->second.ever_served)
      << "model " << id << " was never served";
  return it->second.service != nullptr ? it->second.service->metrics()
                                       : it->second.final_metrics;
}

GatewaySnapshot ServingGateway::metrics() const {
  GatewaySnapshot snapshot;
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<MetricsSnapshot> per_model;
  for (const ModelId id : registry_.ids()) {
    GatewayModelMetrics model;
    model.id = id;
    model.name = registry_.model(id).name;
    model.state = registry_.state(id);
    const auto it = slots_.find(id);
    if (it != slots_.end() && it->second.ever_served) {
      model.memory_budget_bytes = it->second.memory_budget_bytes;
      model.service = it->second.service != nullptr ? it->second.service->metrics()
                                                    : it->second.final_metrics;
      per_model.push_back(model.service);
    }
    snapshot.models.push_back(std::move(model));
  }
  snapshot.aggregate = AggregateSnapshots(per_model);
  snapshot.rejected_unknown = rejected_unknown_.load();
  snapshot.rejected_not_committed = rejected_not_committed_.load();
  snapshot.rejected_not_serving = rejected_not_serving_.load();
  snapshot.rejected_draining = rejected_draining_.load();
  snapshot.rejected_retired = rejected_retired_.load();
  return snapshot;
}

size_t ServingGateway::serving_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [id, slot] : slots_) {
    if (slot.service != nullptr &&
        registry_.state(id) == ModelLifecycle::kServing) {
      ++count;
    }
  }
  return count;
}

int64_t ServingGateway::model_memory_budget(ModelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = slots_.find(id);
  return it == slots_.end() ? 0 : it->second.memory_budget_bytes;
}

std::vector<int64_t> ServingGateway::ApportionBudget(int64_t total, int64_t floor,
                                                     const std::vector<int64_t>& weights) {
  std::vector<int64_t> shares(weights.size(), 0);
  if (weights.empty()) {
    return shares;
  }
  int64_t weight_sum = 0;
  for (const int64_t w : weights) {
    TAO_CHECK(w > 0) << "apportionment weights must be positive";
    weight_sum += w;
  }
  // Floor first, then split the REMAINDER proportionally — never floor the
  // proportional share itself, or N idle models would each pull a full floor on
  // top of the hot model's near-total share and silently over-commit the global
  // budget by ~N*floor. Shares sum to max(total, N*floor) up to rounding (the
  // floor is a hard minimum, so an absurdly small total is over-committed rather
  // than starving every model below a workable cohort).
  const int64_t remainder =
      std::max<int64_t>(0, total - floor * static_cast<int64_t>(weights.size()));
  for (size_t i = 0; i < weights.size(); ++i) {
    const double fraction =
        static_cast<double>(weights[i]) / static_cast<double>(weight_sum);
    shares[i] = floor + static_cast<int64_t>(fraction * static_cast<double>(remainder));
  }
  return shares;
}

void ServingGateway::ApportionBudgetsLocked() {
  // Hot-model weighting: 1 + live queue depth. An idle model's share collapses to
  // the floor (its threads are parked; the floor only matters the moment traffic
  // returns), a backlogged model's share grows with its backlog.
  std::vector<ModelId> ids;
  std::vector<int64_t> weights;
  for (auto& [id, slot] : slots_) {
    if (slot.service != nullptr) {
      ids.push_back(id);
      weights.push_back(1 + static_cast<int64_t>(slot.service->queue_depth()));
    }
  }
  if (ids.empty()) {
    return;
  }
  const std::vector<int64_t> shares = ApportionBudget(
      options_.total_memory_budget_bytes, options_.min_model_budget_bytes, weights);
  for (size_t i = 0; i < ids.size(); ++i) {
    ServingSlot& slot = slots_[ids[i]];
    slot.memory_budget_bytes = shares[i];
    slot.service->SetMemoryBudget(shares[i]);
  }
}

std::shared_ptr<VerificationService> ServingGateway::service_for(ModelId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = slots_.find(id);
  return it == slots_.end() ? nullptr : it->second.service;
}

}  // namespace tao
