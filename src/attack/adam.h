// Adam optimizer state for the PGD attack updates of Sec. 4.4
// ((beta1, beta2, eps) = (0.9, 0.999, 1e-8) per the paper).

#ifndef TAO_SRC_ATTACK_ADAM_H_
#define TAO_SRC_ATTACK_ADAM_H_

#include "src/tensor/tensor.h"

namespace tao {

class AdamState {
 public:
  AdamState(Shape shape, double step_size, double beta1 = 0.9, double beta2 = 0.999,
            double eps = 1e-8)
      : m_(DTensor::Zeros(shape)),
        v_(DTensor::Zeros(shape)),
        step_size_(step_size),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps) {}

  // One ascent step on `params` along `grad` (maximization; callers negate for
  // minimization). Bias-corrected first/second moments.
  void Step(Tensor& params, const Tensor& grad);

  int64_t steps() const { return t_; }
  double step_size() const { return step_size_; }

 private:
  DTensor m_;
  DTensor v_;
  double step_size_;
  double beta1_;
  double beta2_;
  double eps_;
  int64_t t_ = 0;
};

}  // namespace tao

#endif  // TAO_SRC_ATTACK_ADAM_H_
