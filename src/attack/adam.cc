#include "src/attack/adam.h"

#include <cmath>

#include "src/util/check.h"

namespace tao {

void AdamState::Step(Tensor& params, const Tensor& grad) {
  TAO_CHECK(params.shape() == grad.shape());
  ++t_;
  auto pv = params.mutable_values();
  const auto gv = grad.values();
  auto mv = m_.mutable_values();
  auto vv = v_.mutable_values();
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < pv.size(); ++i) {
    const double g = gv[i];
    mv[i] = beta1_ * mv[i] + (1.0 - beta1_) * g;
    vv[i] = beta2_ * vv[i] + (1.0 - beta2_) * g * g;
    const double m_hat = mv[i] / bc1;
    const double v_hat = vv[i] / bc2;
    pv[i] += static_cast<float>(step_size_ * m_hat / (std::sqrt(v_hat) + eps_));
  }
}

}  // namespace tao
