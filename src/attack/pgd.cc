#include "src/attack/pgd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/attack/adam.h"
#include "src/attack/autograd.h"
#include "src/attack/projection.h"
#include "src/graph/executor.h"
#include "src/util/check.h"

namespace tao {
namespace {

// Flattened logits of the output node (classifiers in the zoo emit [1, C] or [C]).
std::vector<double> LogitsOf(const Tensor& output) {
  std::vector<double> logits(static_cast<size_t>(output.numel()));
  for (int64_t i = 0; i < output.numel(); ++i) {
    logits[static_cast<size_t>(i)] = output[i];
  }
  return logits;
}

int64_t ArgMax(const std::vector<double>& v) {
  return static_cast<int64_t>(std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace

PgdAttack::PgdAttack(const Model& model, const ThresholdSet& thresholds, AttackConfig config)
    : model_(model), thresholds_(thresholds), config_(config) {}

std::vector<int64_t> PgdAttack::SampleBucketTargets(const Tensor& logits, Rng& rng) {
  const std::vector<double> z = LogitsOf(logits);
  const int64_t c1 = ArgMax(z);
  // Candidates sorted by margin (ascending = easiest targets first).
  std::vector<int64_t> candidates;
  for (int64_t c = 0; c < static_cast<int64_t>(z.size()); ++c) {
    if (c != c1) {
      candidates.push_back(c);
    }
  }
  std::sort(candidates.begin(), candidates.end(), [&](int64_t a, int64_t b) {
    return z[static_cast<size_t>(a)] > z[static_cast<size_t>(b)];  // larger logit = smaller margin
  });
  std::vector<int64_t> targets;
  const size_t n = candidates.size();
  for (int bucket = 0; bucket < 5; ++bucket) {
    const size_t lo = n * static_cast<size_t>(bucket) / 5;
    const size_t hi = std::max(lo + 1, n * static_cast<size_t>(bucket + 1) / 5);
    targets.push_back(candidates[lo + rng.NextBounded(hi - lo)]);
  }
  return targets;
}

AttackOutcome PgdAttack::Attack(const std::vector<Tensor>& input, int64_t target_class) const {
  const Graph& graph = *model_.graph;
  const DeviceProfile& device = DeviceRegistry::Reference();
  const Executor exec(graph, device);

  // Honest forward fixes c1 and the initial margin.
  const ExecutionTrace honest = exec.Run(input);
  const std::vector<double> z0 = LogitsOf(honest.value(graph.output()));
  AttackOutcome outcome;
  outcome.original_class = ArgMax(z0);
  outcome.target_class = target_class;
  TAO_CHECK_NE(outcome.original_class, target_class);
  outcome.m0 = z0[static_cast<size_t>(outcome.original_class)] -
               z0[static_cast<size_t>(target_class)];
  outcome.m_final = outcome.m0;

  // Per-node perturbations and Adam states. Step size: 1/4 of the node's median
  // admissible magnitude (paper default); nodes with zero headroom are skipped.
  struct PerNode {
    NodeId id;
    Tensor delta;
    AdamState adam;
  };
  std::vector<PerNode> nodes;
  const ExecutorOptions bound_opts{/*with_bounds=*/config_.feasible ==
                                       FeasibleSetKind::kTheoretical,
                                   config_.theo_mode, kDefaultLambda};
  const ExecutionTrace honest_bounds =
      config_.feasible == FeasibleSetKind::kTheoretical ? exec.Run(input, bound_opts) : honest;

  for (const NodeId id : graph.op_nodes()) {
    if (id == graph.output()) {
      continue;  // perturbing the committed output directly is checked at Phase 1
    }
    double median_cap = 0.0;
    if (config_.feasible == FeasibleSetKind::kEmpirical) {
      median_cap = config_.scale * thresholds_.AbsCap(id, 0.5);
    } else {
      std::vector<double> taus(honest_bounds.bound(id).values().begin(),
                               honest_bounds.bound(id).values().end());
      std::sort(taus.begin(), taus.end());
      median_cap = config_.scale * taus[taus.size() / 2];
    }
    if (median_cap <= 0.0) {
      continue;
    }
    nodes.push_back(PerNode{id, Tensor::Zeros(graph.node(id).shape),
                            AdamState(graph.node(id).shape, median_cap / 4.0)});
  }

  double prev_margin = outcome.m0;
  int stall = 0;
  for (int iter = 0; iter < config_.max_iters; ++iter) {
    outcome.iters = iter + 1;
    std::vector<Executor::Perturbation> perturbations;
    perturbations.reserve(nodes.size());
    for (const PerNode& node : nodes) {
      perturbations.push_back({node.id, node.delta});
    }
    ExecutorOptions opts;
    opts.with_bounds = config_.feasible == FeasibleSetKind::kTheoretical;
    opts.bound_mode = config_.theo_mode;
    const ExecutionTrace trace = exec.RunPerturbed(input, perturbations, opts);
    const std::vector<double> z = LogitsOf(trace.value(graph.output()));
    const double margin = z[static_cast<size_t>(outcome.original_class)] -
                          z[static_cast<size_t>(target_class)];
    outcome.m_final = margin;
    if (margin < 0.0) {
      outcome.success = true;
      break;
    }
    // Stall detection (the paper's early stop).
    if (std::abs(margin - prev_margin) < config_.stall_rel * std::abs(outcome.m0)) {
      if (++stall >= config_.stall_patience) {
        break;
      }
    } else {
      stall = 0;
    }
    prev_margin = margin;

    // Gradient of L_margin = z_target - z_c1 through the perturbed trace.
    Tensor seed = Tensor::Zeros(graph.node(graph.output()).shape);
    seed.mutable_values()[static_cast<size_t>(target_class)] = 1.0f;
    seed.mutable_values()[static_cast<size_t>(outcome.original_class)] = -1.0f;
    const std::vector<Tensor> grads = BackpropFromOutput(graph, trace, seed);

    for (PerNode& node : nodes) {
      node.adam.Step(node.delta, grads[static_cast<size_t>(node.id)]);
      if (config_.feasible == FeasibleSetKind::kEmpirical) {
        ProjectEmpirical(node.delta, thresholds_, node.id, config_.scale);
      } else {
        // Runtime bounds from the current perturbed inputs, scaled by alpha.
        DTensor tau = trace.bound(node.id).Clone();
        if (config_.scale != 1.0) {
          for (double& t : tau.mutable_values()) {
            t *= config_.scale;
          }
        }
        ProjectTheoretical(node.delta, tau);
      }
    }
  }

  outcome.delta_m = outcome.m0 - outcome.m_final;
  outcome.delta_rel = outcome.m0 != 0.0 ? outcome.delta_m / outcome.m0 : 0.0;
  return outcome;
}

}  // namespace tao
