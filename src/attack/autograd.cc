#include "src/attack/autograd.h"

#include "src/util/check.h"

namespace tao {

std::vector<Tensor> BackpropFromOutput(const Graph& graph, const ExecutionTrace& trace,
                                       const Tensor& grad_seed) {
  const NodeId output = graph.output();
  TAO_CHECK(grad_seed.shape() == graph.node(output).shape)
      << "grad seed shape " << grad_seed.shape().ToString() << " != output shape "
      << graph.node(output).shape.ToString();

  std::vector<Tensor> grads(static_cast<size_t>(graph.num_nodes()));
  std::vector<bool> has_grad(static_cast<size_t>(graph.num_nodes()), false);
  grads[static_cast<size_t>(output)] = grad_seed.Clone();
  has_grad[static_cast<size_t>(output)] = true;

  auto accumulate = [&](NodeId id, const Tensor& grad) {
    const size_t k = static_cast<size_t>(id);
    if (!has_grad[k]) {
      grads[k] = grad.Clone();
      has_grad[k] = true;
      return;
    }
    auto dst = grads[k].mutable_values();
    const auto src = grad.values();
    TAO_CHECK_EQ(dst.size(), src.size());
    for (size_t i = 0; i < dst.size(); ++i) {
      dst[i] += src[i];
    }
  };

  const std::vector<NodeId>& ops = graph.op_nodes();
  for (size_t idx = ops.size(); idx > 0; --idx) {
    const NodeId id = ops[idx - 1];
    if (!has_grad[static_cast<size_t>(id)]) {
      continue;  // output does not depend on this node
    }
    const Node& node = graph.node(id);
    const OpKernel& kernel = OpRegistry::Instance().Get(node.op);
    std::vector<Tensor> op_inputs;
    op_inputs.reserve(node.inputs.size());
    for (const NodeId in : node.inputs) {
      op_inputs.push_back(trace.value(in));
    }
    const VjpContext ctx{op_inputs, trace.value(id), grads[static_cast<size_t>(id)],
                         node.attrs};
    const std::vector<Tensor> input_grads = kernel.Vjp(ctx);
    TAO_CHECK_EQ(input_grads.size(), node.inputs.size()) << node.label;
    for (size_t i = 0; i < input_grads.size(); ++i) {
      accumulate(node.inputs[i], input_grads[i]);
    }
  }

  // Materialize zeros for unreached nodes so callers can index uniformly.
  for (const Node& node : graph.nodes()) {
    if (!has_grad[static_cast<size_t>(node.id)]) {
      grads[static_cast<size_t>(node.id)] = Tensor::Zeros(node.shape);
    }
  }
  return grads;
}

}  // namespace tao
