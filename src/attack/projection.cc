#include "src/attack/projection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/check.h"

namespace tao {

void ProjectTheoretical(Tensor& delta, const DTensor& tau) {
  TAO_CHECK(delta.shape() == tau.shape());
  auto dv = delta.mutable_values();
  const auto tv = tau.values();
  for (size_t i = 0; i < dv.size(); ++i) {
    // Round the FP32 cap toward zero so the clipped value never exceeds the FP64 tau.
    float cap = static_cast<float>(tv[i]);
    if (static_cast<double>(cap) > tv[i]) {
      cap = std::nextafterf(cap, 0.0f);
    }
    dv[i] = std::clamp(dv[i], -cap, cap);
  }
}

void ProjectEmpirical(Tensor& delta, const ThresholdSet& thresholds, NodeId id,
                      double scale) {
  auto dv = delta.mutable_values();
  const size_t n = dv.size();
  if (n == 0) {
    return;
  }
  // sigma sorts magnitudes increasingly (Eq. 12).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::abs(dv[a]) < std::abs(dv[b]);
  });
  double running_cap = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const double rank = (static_cast<double>(k) + 0.5) / static_cast<double>(n);
    // Monotone caps: c_k <- max(c_k, c_{k-1}).
    running_cap = std::max(running_cap, scale * thresholds.AbsCap(id, rank));
    const size_t idx = order[k];
    const float magnitude = std::abs(dv[idx]);
    if (magnitude > running_cap) {
      // Round the FP32 cap toward zero so the stored value never exceeds the FP64 cap.
      float cap = static_cast<float>(running_cap);
      if (static_cast<double>(cap) > running_cap) {
        cap = std::nextafterf(cap, 0.0f);
      }
      dv[idx] = std::copysign(cap, dv[idx]);
    }
  }
}

bool SatisfiesTheoretical(const Tensor& delta, const DTensor& tau) {
  TAO_CHECK(delta.shape() == tau.shape());
  const auto dv = delta.values();
  const auto tv = tau.values();
  for (size_t i = 0; i < dv.size(); ++i) {
    if (std::abs(static_cast<double>(dv[i])) > tv[i]) {
      return false;
    }
  }
  return true;
}

bool SatisfiesEmpirical(const Tensor& delta, const ThresholdSet& thresholds, NodeId id,
                        double scale) {
  const auto dv = delta.values();
  const size_t n = dv.size();
  std::vector<double> magnitudes(n);
  for (size_t i = 0; i < n; ++i) {
    magnitudes[i] = std::abs(static_cast<double>(dv[i]));
  }
  std::sort(magnitudes.begin(), magnitudes.end());
  double running_cap = 0.0;
  constexpr double kSlack = 1.0 + 1e-6;  // float-rounding slack from sign restoration
  for (size_t k = 0; k < n; ++k) {
    const double rank = (static_cast<double>(k) + 0.5) / static_cast<double>(n);
    running_cap = std::max(running_cap, scale * thresholds.AbsCap(id, rank));
    if (magnitudes[k] > running_cap * kSlack) {
      return false;
    }
  }
  return true;
}

}  // namespace tao
