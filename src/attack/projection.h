// Projections onto the verifier's admissible sets (Sec. 4.4).
//
// (i) Theoretical feasible set F_theo (Eq. 9/11): element-wise clipping of the
//     perturbation to [-tau_theo, +tau_theo] with tau computed at runtime from the
//     operator's actual inputs.
// (ii) Empirical feasible set F_emp (Eq. 8/12): the sorted magnitudes of the
//     perturbation must lie under the committed cap curve C_i(r); the projection clips
//     order statistics against the monotone cap and restores signs/positions.

#ifndef TAO_SRC_ATTACK_PROJECTION_H_
#define TAO_SRC_ATTACK_PROJECTION_H_

#include "src/calib/threshold.h"
#include "src/tensor/tensor.h"

namespace tao {

// Element-wise clip of delta into [-tau, tau] (shapes must match).
void ProjectTheoretical(Tensor& delta, const DTensor& tau);

// Order-statistics projection onto the empirical cap curve of node `id`:
//   ranks r_k = (k - 1/2)/n, caps c_k = C_i(r_k) made monotone, a*_sigma(k) =
//   min(a_sigma(k), c_k), signs restored. `scale` multiplies the caps (the alpha knob).
void ProjectEmpirical(Tensor& delta, const ThresholdSet& thresholds, NodeId id,
                      double scale = 1.0);

// True when |delta| <= tau element-wise.
bool SatisfiesTheoretical(const Tensor& delta, const DTensor& tau);

// True when the sorted |delta| lies under the cap curve at every rank.
bool SatisfiesEmpirical(const Tensor& delta, const ThresholdSet& thresholds, NodeId id,
                        double scale = 1.0);

}  // namespace tao

#endif  // TAO_SRC_ATTACK_PROJECTION_H_
