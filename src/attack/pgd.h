// Optimization-based bound-aware attacks (Sec. 4.4-4.5).
//
// A white-box adversarial proposer injects perturbations {Delta_v} after operator
// outputs to flip the model's decision to a chosen target class while staying inside
// the verifier's admissible set — either the empirical cap curves (search-time checks)
// or the element-wise theoretical bounds (leaf check). Updates are PGD with Adam on
// the logit-margin objective L = z_target - z_top (Eq. 10), projected after each step
// (Eq. 11/12), with the paper's stall-based early stopping.

#ifndef TAO_SRC_ATTACK_PGD_H_
#define TAO_SRC_ATTACK_PGD_H_

#include <vector>

#include "src/calib/threshold.h"
#include "src/models/model_zoo.h"
#include "src/ops/fperror.h"

namespace tao {

enum class FeasibleSetKind {
  kEmpirical,    // committed percentile cap curves (Eq. 8)
  kTheoretical,  // element-wise runtime IEEE-754 bounds (Eq. 9)
};

struct AttackConfig {
  FeasibleSetKind feasible = FeasibleSetKind::kEmpirical;
  // For the theoretical set: deterministic (d) or probabilistic (p) gamma.
  BoundMode theo_mode = BoundMode::kProbabilistic;
  // Bound-scaling knob alpha of Table 2 (>1 loosens, <1 tightens).
  double scale = 1.0;
  int max_iters = 60;
  // Early stop when the margin change stalls below `stall_rel * |m0|` for
  // `stall_patience` consecutive iterations.
  double stall_rel = 1e-3;
  int stall_patience = 10;
};

struct AttackOutcome {
  bool success = false;     // prediction flipped to the target class
  int64_t original_class = -1;
  int64_t target_class = -1;
  double m0 = 0.0;          // initial logit margin z_c1 - z_target (> 0)
  double m_final = 0.0;     // final margin
  double delta_m = 0.0;     // m0 - m_final (progress toward flipping)
  double delta_rel = 0.0;   // delta_m / m0
  int iters = 0;
};

class PgdAttack {
 public:
  PgdAttack(const Model& model, const ThresholdSet& thresholds, AttackConfig config);

  // Attacks one input toward `target_class`. Perturbations are injected at every
  // operator node (the adversary controls the full execution).
  AttackOutcome Attack(const std::vector<Tensor>& input, int64_t target_class) const;

  // Buckets candidate targets by their logit-margin percentile among all non-predicted
  // classes ([0-20%], ..., [80-100%]) and samples one per bucket (Sec. 4.5).
  static std::vector<int64_t> SampleBucketTargets(const Tensor& logits, Rng& rng);

 private:
  const Model& model_;
  const ThresholdSet& thresholds_;
  AttackConfig config_;
};

}  // namespace tao

#endif  // TAO_SRC_ATTACK_PGD_H_
