// Reverse-mode automatic differentiation over the graph IR.
//
// The bound-aware attacks of Sec. 4.4 need d(logit margin)/d(h_v) for every operator
// output h_v the adversary may perturb. Given a forward trace, BackpropFromOutput seeds
// a cotangent at the graph output and sweeps the operator list in reverse topological
// order, accumulating per-op VJPs. Gradients are returned for every node id (zero where
// the output does not depend on the node).

#ifndef TAO_SRC_ATTACK_AUTOGRAD_H_
#define TAO_SRC_ATTACK_AUTOGRAD_H_

#include <vector>

#include "src/graph/executor.h"
#include "src/graph/graph.h"

namespace tao {

// grads[id] has the shape of node id's output. `grad_seed` must match the output
// node's shape.
std::vector<Tensor> BackpropFromOutput(const Graph& graph, const ExecutionTrace& trace,
                                       const Tensor& grad_seed);

}  // namespace tao

#endif  // TAO_SRC_ATTACK_AUTOGRAD_H_
