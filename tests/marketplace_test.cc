// Marketplace-simulation tests: over many tasks with random cheats and dual
// supervision channels, honest proposers are never slashed, caught cheats are
// slashed, the realized detection rate tracks the analytical d = (phi+phi_ch)(1-eps1)
// of Sec. 5.5, and the ledger conserves value.

#include <cmath>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/protocol/marketplace.h"

namespace tao {
namespace {

class MarketplaceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new Model(BuildBertMini());
    CalibrateOptions options;
    options.num_samples = 5;
    thresholds_ = new ThresholdSet(
        Calibrate(*model_, DeviceRegistry::Fleet(), options).MakeThresholds(3.0));
    commitment_ = new ModelCommitment(*model_->graph, *thresholds_);
  }

  static void TearDownTestSuite() {
    delete commitment_;
    delete thresholds_;
    delete model_;
    commitment_ = nullptr;
    thresholds_ = nullptr;
    model_ = nullptr;
  }

  static Model* model_;
  static ThresholdSet* thresholds_;
  static ModelCommitment* commitment_;
};

Model* MarketplaceFixture::model_ = nullptr;
ThresholdSet* MarketplaceFixture::thresholds_ = nullptr;
ModelCommitment* MarketplaceFixture::commitment_ = nullptr;

TEST_F(MarketplaceFixture, HonestProposersNeverSlashed) {
  MarketplaceConfig config;
  config.num_tasks = 40;
  config.cheat_rate = 0.0;
  config.economics.challenge_prob = 0.5;  // heavy supervision
  config.economics.audit_prob = 0.3;
  Marketplace market(*model_, *commitment_, *thresholds_, config);
  const MarketplaceStats stats = market.Run();
  EXPECT_EQ(stats.honest_slashes, 0);
  EXPECT_EQ(stats.spurious_disputes, 0);
  EXPECT_EQ(stats.cheats_attempted, 0);
  EXPECT_EQ(stats.finalized_clean, stats.tasks);
}

TEST_F(MarketplaceFixture, SupervisedCheatsAreCaught) {
  MarketplaceConfig config;
  config.num_tasks = 30;
  config.cheat_rate = 1.0;                 // every task cheats
  config.economics.challenge_prob = 1.0;   // every claim is verified
  config.economics.audit_prob = 0.0;
  Marketplace market(*model_, *commitment_, *thresholds_, config);
  const MarketplaceStats stats = market.Run();
  EXPECT_EQ(stats.cheats_attempted, stats.tasks);
  // Most cheats are caught; a small eps1 residue may hide inside the tolerance
  // (shift-invariant injection sites).
  EXPECT_GE(stats.cheats_caught, (stats.tasks * 3) / 4);
  EXPECT_EQ(stats.honest_slashes, 0);
  EXPECT_GT(stats.total_gas, 0);
}

TEST_F(MarketplaceFixture, UnsupervisedCheatsEscape) {
  MarketplaceConfig config;
  config.num_tasks = 20;
  config.cheat_rate = 1.0;
  config.economics.challenge_prob = 0.0;  // nobody ever watches
  config.economics.audit_prob = 0.0;
  Marketplace market(*model_, *commitment_, *thresholds_, config);
  const MarketplaceStats stats = market.Run();
  EXPECT_EQ(stats.cheats_caught, 0);
  EXPECT_EQ(stats.cheats_escaped, stats.tasks);
}

TEST_F(MarketplaceFixture, RealizedDetectionTracksAnalyticalRate) {
  MarketplaceConfig config;
  config.num_tasks = 80;
  config.cheat_rate = 0.5;
  config.economics.challenge_prob = 0.3;
  config.economics.audit_prob = 0.2;
  config.seed = 0x5eed5;
  Marketplace market(*model_, *commitment_, *thresholds_, config);
  const MarketplaceStats stats = market.Run();
  ASSERT_GT(stats.cheats_attempted, 10);
  const double analytical = DetectionProbability(config.economics);
  const double realized = stats.realized_detection_rate();
  // Binomial noise at n ~ 40: allow a generous band around d.
  EXPECT_NEAR(realized, analytical, 0.25);
  EXPECT_EQ(stats.honest_slashes, 0);
}

// Seed-sweep determinism regression guarding the two-phase RNG refactor: with the
// draw phase hoisted ahead of execution, repeated runs at a fixed seed must produce
// bitwise-identical statistics and ledger balances — across seeds, batch sizes, and
// thread counts. A drift here means the cohort draw order no longer matches the
// claim resolution order.
TEST_F(MarketplaceFixture, SeedSweepRunsAreDeterministic) {
  const uint64_t seeds[] = {0x5eed0, 0x5eed1, 0x5eed2, 0x5eed3, 0x5eed4};
  for (const uint64_t seed : seeds) {
    MarketplaceConfig config;
    config.num_tasks = 10;
    config.cheat_rate = 0.5;
    config.economics.challenge_prob = 0.4;
    config.economics.audit_prob = 0.2;
    config.seed = seed;
    config.verify_batch_size = 4;
    config.dispute.num_threads = 4;

    bool have_reference = false;
    MarketplaceStats reference;
    Balances reference_balances;
    for (int run = 0; run < 3; ++run) {
      Marketplace market(*model_, *commitment_, *thresholds_, config);
      const MarketplaceStats stats = market.Run();
      const Balances balances = market.balances();
      if (!have_reference) {
        have_reference = true;
        reference = stats;
        reference_balances = balances;
        continue;
      }
      EXPECT_EQ(stats.tasks, reference.tasks) << "seed " << seed;
      EXPECT_EQ(stats.finalized_clean, reference.finalized_clean) << "seed " << seed;
      EXPECT_EQ(stats.cheats_attempted, reference.cheats_attempted) << "seed " << seed;
      EXPECT_EQ(stats.cheats_caught, reference.cheats_caught) << "seed " << seed;
      EXPECT_EQ(stats.cheats_escaped, reference.cheats_escaped) << "seed " << seed;
      EXPECT_EQ(stats.voluntary_challenges, reference.voluntary_challenges)
          << "seed " << seed;
      EXPECT_EQ(stats.audits, reference.audits) << "seed " << seed;
      EXPECT_EQ(stats.spurious_disputes, reference.spurious_disputes) << "seed " << seed;
      EXPECT_EQ(stats.honest_slashes, reference.honest_slashes) << "seed " << seed;
      EXPECT_EQ(stats.total_gas, reference.total_gas) << "seed " << seed;
      EXPECT_EQ(balances.proposer, reference_balances.proposer) << "seed " << seed;
      EXPECT_EQ(balances.challenger, reference_balances.challenger) << "seed " << seed;
      EXPECT_EQ(balances.treasury, reference_balances.treasury) << "seed " << seed;
    }
  }
}

// Run() was historically repeatable (each call built a fresh service over the
// persistent coordinator); the registry refactor keeps that contract through the
// retire + re-serve path — a second Run must not abort, draws the same task
// sequence (same seed), and accumulates the ledger.
TEST_F(MarketplaceFixture, RunIsRepeatableOverThePersistentLedger) {
  MarketplaceConfig config;
  config.num_tasks = 4;
  config.cheat_rate = 0.5;
  config.economics.challenge_prob = 0.5;
  Marketplace market(*model_, *commitment_, *thresholds_, config);
  const MarketplaceStats first = market.Run();
  const Balances after_first = market.balances();
  const MarketplaceStats second = market.Run();
  EXPECT_EQ(second.tasks, first.tasks);
  EXPECT_EQ(second.cheats_attempted, first.cheats_attempted);
  EXPECT_EQ(second.cheats_caught, first.cheats_caught);
  EXPECT_EQ(second.total_gas, first.total_gas);
  const Balances after_second = market.balances();
  EXPECT_NEAR(after_second.treasury, 2 * after_first.treasury, 1e-9);
  EXPECT_NEAR(after_second.proposer, 2 * after_first.proposer, 1e-6);
}

TEST_F(MarketplaceFixture, LedgerConservation) {
  MarketplaceConfig config;
  config.num_tasks = 30;
  config.cheat_rate = 0.4;
  config.economics.challenge_prob = 0.5;
  Marketplace market(*model_, *commitment_, *thresholds_, config);
  (void)market.Run();
  const Balances& balances = market.balances();
  // Escrow accounting closes: proposer losses = challenger gains + burned treasury.
  EXPECT_NEAR(balances.proposer + balances.challenger + balances.treasury, 0.0, 1e-9);
  EXPECT_GE(balances.treasury, 0.0);
}

}  // namespace
}  // namespace tao
