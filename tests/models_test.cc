// Model-zoo tests: every mini model builds, executes on every device, produces
// finite outputs of the expected shape, exhibits genuine cross-device low-order
// divergence, and supports end-to-end backprop (required by the attack pipeline).

#include <cmath>

#include <gtest/gtest.h>

#include "src/attack/autograd.h"
#include "src/graph/executor.h"
#include "src/models/model_zoo.h"

namespace tao {
namespace {

class ModelCase : public ::testing::TestWithParam<int> {
 protected:
  Model BuildModel() const {
    switch (GetParam()) {
      case 0:
        return BuildResNetMini();
      case 1:
        return BuildBertMini();
      case 2:
        return BuildQwenMini();
      default:
        return BuildDiffusionMini();
    }
  }
};

TEST_P(ModelCase, ExecutesWithFiniteOutputs) {
  const Model model = BuildModel();
  Rng rng(1000 + GetParam());
  const std::vector<Tensor> input = model.sample_input(rng);
  const Executor exec(*model.graph, DeviceRegistry::Reference());
  const Tensor out = exec.RunOutput(input);
  EXPECT_GT(out.numel(), 0);
  for (const float v : out.values()) {
    EXPECT_TRUE(std::isfinite(v)) << model.name;
  }
}

TEST_P(ModelCase, GraphHasSubstantialOperatorCount) {
  const Model model = BuildModel();
  EXPECT_GE(model.graph->num_ops(), 40) << model.name;
  EXPECT_GT(model.graph->TotalFlops(), 100000) << model.name;
}

TEST_P(ModelCase, CrossDeviceDivergenceSmallButNonzero) {
  const Model model = BuildModel();
  Rng rng(2000 + GetParam());
  const std::vector<Tensor> input = model.sample_input(rng);
  const Executor ref_exec(*model.graph, DeviceRegistry::Reference());
  const Tensor ref = ref_exec.RunOutput(input);
  int differing = 0;
  for (const DeviceProfile& device : DeviceRegistry::Fleet()) {
    const Executor exec(*model.graph, device);
    const Tensor out = exec.RunOutput(input);
    const double diff = MaxAbsDiff(out, ref);
    EXPECT_LT(diff, 1e-2) << model.name << " on " << device.name;
    if (diff > 0.0) {
      ++differing;
    }
  }
  EXPECT_GE(differing, 2) << model.name;
}

TEST_P(ModelCase, DeterministicPerDeviceAndInput) {
  const Model model = BuildModel();
  Rng rng(3000 + GetParam());
  const std::vector<Tensor> input = model.sample_input(rng);
  const Executor exec(*model.graph, DeviceRegistry::ByName("H100"));
  const Tensor a = exec.RunOutput(input);
  const Tensor b = exec.RunOutput(input);
  EXPECT_EQ(MaxAbsDiff(a, b), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelCase, ::testing::Range(0, 4));

TEST(ModelZooTest, ClassifierOutputShapes) {
  const Model resnet = BuildResNetMini();
  EXPECT_EQ(resnet.graph->node(resnet.graph->output()).shape,
            Shape({1, resnet.num_classes}));
  const Model bert = BuildBertMini();
  EXPECT_EQ(bert.graph->node(bert.graph->output()).shape, Shape({1, bert.num_classes}));
  const Model qwen = BuildQwenMini();
  EXPECT_EQ(qwen.graph->node(qwen.graph->output()).shape, Shape({1, qwen.num_classes}));
}

TEST(ModelZooTest, DiffusionPreservesLatentShape) {
  const DiffusionConfig config;
  const Model diff = BuildDiffusionMini(config);
  EXPECT_EQ(diff.graph->node(diff.graph->output()).shape,
            Shape({1, config.latent_channels, config.latent_size, config.latent_size}));
}

TEST(ModelZooTest, AttackModelsBackpropagate) {
  for (const Model& model : BuildAttackModels()) {
    Rng rng(4000);
    const std::vector<Tensor> input = model.sample_input(rng);
    const Executor exec(*model.graph, DeviceRegistry::Reference());
    const ExecutionTrace trace = exec.Run(input);
    Tensor seed = Tensor::Zeros(model.graph->node(model.graph->output()).shape);
    seed.mutable_values()[0] = 1.0f;
    const auto grads = BackpropFromOutput(*model.graph, trace, seed);
    // Some mid-graph operator must receive a nonzero gradient.
    int nonzero_nodes = 0;
    for (const NodeId id : model.graph->op_nodes()) {
      for (const float v : grads[static_cast<size_t>(id)].values()) {
        if (v != 0.0f) {
          ++nonzero_nodes;
          break;
        }
      }
    }
    EXPECT_GT(nonzero_nodes, model.graph->num_ops() / 2) << model.name;
  }
}

TEST(ModelZooTest, SampledInputsVaryWithRngState) {
  const Model bert = BuildBertMini();
  Rng rng(5000);
  const std::vector<Tensor> a = bert.sample_input(rng);
  const std::vector<Tensor> b = bert.sample_input(rng);
  EXPECT_GT(MaxAbsDiff(a[0], b[0]), 0.0);
}

TEST(ModelZooTest, BuildersAreDeterministic) {
  const Model a = BuildQwenMini();
  const Model b = BuildQwenMini();
  ASSERT_EQ(a.graph->num_nodes(), b.graph->num_nodes());
  for (const NodeId id : a.graph->param_nodes()) {
    EXPECT_EQ(MaxAbsDiff(a.graph->node(id).value, b.graph->node(id).value), 0.0);
  }
}

}  // namespace
}  // namespace tao
