// Parallel runtime layer tests: ThreadPool task execution, ParallelFor coverage and
// nesting, TensorArena recycling, and the protocol's load-bearing invariant — a
// trace's values AND bounds are bitwise identical for every num_threads and arena
// setting, across model-zoo graphs, because commitments hash exact values.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/graph/executor.h"
#include "src/models/model_zoo.h"
#include "src/protocol/dispute.h"
#include "src/protocol/multistep.h"
#include "src/runtime/arena.h"
#include "src/runtime/parallel_for.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/thread_pool.h"
#include "src/util/rng.h"

namespace tao {
namespace {

// ----------------------------------- ThreadPool ------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < kTasks) {
  }
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, SharedPoolSupportsEightWayExecution) {
  // The shared pool must be wide enough to host num_threads = 8 runs even on a
  // single-core CI box (7 workers + caller).
  EXPECT_GE(ThreadPool::Shared().num_workers(), 7);
}

TEST(ThreadPoolTest, PinWorkersAssignsRoundRobinCores) {
  const unsigned cores = std::thread::hardware_concurrency();
  ThreadPool pool(4);
  const int pinned = pool.PinWorkers();
  if (cores <= 1) {
    // Single-core host: pinning is a documented no-op.
    EXPECT_EQ(pinned, 0);
    EXPECT_EQ(pool.worker_core(0), -1);
    return;
  }
  EXPECT_EQ(pinned, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pool.worker_core(i), static_cast<int>(i % cores)) << "worker " << i;
  }
  EXPECT_EQ(pool.worker_core(-1), -1);
  EXPECT_EQ(pool.worker_core(99), -1);
  EXPECT_EQ(pool.PinWorkers(), 4);  // idempotent
  // Placement must not affect execution: the pool still runs everything.
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  while (done.load() < 64) {
  }
}

TEST(ThreadPoolTest, PinningDisabledByEnvironment) {
  setenv("TAO_DISABLE_PINNING", "1", 1);
  ThreadPool pool(2);
  EXPECT_EQ(pool.PinWorkers(), 0);
  EXPECT_EQ(pool.worker_core(0), -1);
  EXPECT_EQ(pool.worker_core(1), -1);
  unsetenv("TAO_DISABLE_PINNING");
}

TEST(ThreadPoolTest, OptionsConstructorPinsAtStartup) {
  ThreadPoolOptions options;
  options.num_workers = 3;
  options.pin_threads = true;
  ThreadPool pool(options);
  EXPECT_EQ(pool.num_workers(), 3);
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_EQ(pool.worker_core(0), 0);
  }
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  while (done.load() < 32) {
  }
}

// ----------------------------------- ParallelFor -----------------------------------

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const ParallelFor parallel(&pool, 4);
  std::vector<std::atomic<int>> hits(1000);
  parallel(1000, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, SequentialFallbackAndEmptyRange) {
  const ParallelFor sequential;  // no pool
  int64_t sum = 0;
  sequential(10, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      sum += i;
    }
  });
  EXPECT_EQ(sum, 45);
  bool called = false;
  sequential(0, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, NestedLoopsOnSamePoolComplete) {
  // A loop body that itself runs a ParallelFor on the same pool must not deadlock:
  // the help-loop design has every caller drain its own chunks.
  ThreadPool pool(2);
  const ParallelFor outer(&pool, 2);
  std::atomic<int64_t> total{0};
  outer(8, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const ParallelFor inner(&pool, 2);
      inner(100, [&](int64_t b, int64_t e) { total.fetch_add(e - b); });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

// ----------------------------------- TensorArena -----------------------------------

TEST(TensorArenaTest, RecyclesUniquelyOwnedBuffers) {
  TensorArena arena;
  Tensor a = arena.Allocate(Shape{4, 4});
  std::memset(a.mutable_values().data(), 0, 16 * sizeof(float));
  arena.Recycle(std::move(a));
  const Tensor b = arena.Allocate(Shape{2, 8});  // same numel, different shape
  EXPECT_EQ(b.shape(), Shape({2, 8}));
  const TensorArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.pool_hits, 1);
  EXPECT_EQ(stats.fresh_allocations, 1);
  EXPECT_EQ(stats.recycled, 1);
}

TEST(TensorArenaTest, RefusesSharedBuffers) {
  TensorArena arena;
  Tensor a = arena.Allocate(Shape{8});
  const Tensor alias = a;  // storage now shared
  arena.Recycle(std::move(a));
  EXPECT_EQ(arena.stats().recycled, 0);
  EXPECT_EQ(alias.numel(), 8);  // alias unharmed
}

// ----------------------------------- Scheduler -------------------------------------

TEST(SchedulerTest, RespectsDependenciesAcrossThreadCounts) {
  // Diamond DAG: 0 -> {1, 2} -> 3. Every execution order must see producers first.
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(4);
    const Scheduler scheduler(&pool, threads);
    const std::vector<std::vector<int32_t>> consumers = {{1, 2}, {3}, {3}, {}};
    std::vector<int32_t> pending = {0, 1, 1, 2};
    std::vector<std::atomic<int>> finished(4);
    scheduler.Run(consumers, pending, [&](int32_t node) {
      if (node == 1 || node == 2) {
        EXPECT_EQ(finished[0].load(), 1);
      }
      if (node == 3) {
        EXPECT_EQ(finished[1].load(), 1);
        EXPECT_EQ(finished[2].load(), 1);
      }
      finished[static_cast<size_t>(node)].fetch_add(1);
    });
    for (const auto& f : finished) {
      EXPECT_EQ(f.load(), 1);
    }
  }
}

// ------------------------- Bitwise determinism of execution ------------------------

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) {
    return false;
  }
  return std::memcmp(a.values().data(), b.values().data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

bool BitwiseEqual(const DTensor& a, const DTensor& b) {
  if (!(a.shape() == b.shape())) {
    return false;
  }
  return std::memcmp(a.values().data(), b.values().data(),
                     static_cast<size_t>(a.numel()) * sizeof(double)) == 0;
}

void ExpectIdenticalTraces(const Model& model, const DeviceProfile& device) {
  Rng rng(0x7a0);
  const std::vector<Tensor> input = model.sample_input(rng);
  const Graph& graph = *model.graph;
  const Executor exec(graph, device);

  ExecutorOptions baseline_options;
  baseline_options.with_bounds = true;
  const ExecutionTrace baseline = exec.Run(input, baseline_options);

  for (const int threads : {1, 2, 8}) {
    for (const bool reuse : {false, true}) {
      ExecutorOptions options;
      options.with_bounds = true;
      options.num_threads = threads;
      options.reuse_buffers = reuse;
      const ExecutionTrace trace = exec.Run(input, options);
      ASSERT_EQ(trace.values.size(), baseline.values.size());
      for (const NodeId id : graph.op_nodes()) {
        EXPECT_TRUE(BitwiseEqual(trace.value(id), baseline.value(id)))
            << model.name << " node " << id << " diverged at num_threads=" << threads
            << " reuse=" << reuse;
        EXPECT_TRUE(BitwiseEqual(trace.bound(id), baseline.bound(id)))
            << model.name << " bound " << id << " diverged at num_threads=" << threads
            << " reuse=" << reuse;
      }
      // Output-only path (the one that actually recycles buffers) must agree too.
      TensorArena::Stats stats;
      const Tensor out = exec.RunOutput(input, options, &stats);
      EXPECT_TRUE(BitwiseEqual(out, baseline.value(graph.output())))
          << model.name << " RunOutput diverged at num_threads=" << threads
          << " reuse=" << reuse;
      if (reuse) {
        EXPECT_GT(stats.pool_hits, 0)
            << model.name << ": arena reuse produced no pool hits";
      }
    }
  }
}

TEST(RuntimeDeterminismTest, BertMiniTracesBitwiseIdentical) {
  ExpectIdenticalTraces(BuildBertMini(), DeviceRegistry::ByName("H100"));
}

TEST(RuntimeDeterminismTest, ResNetMiniTracesBitwiseIdentical) {
  ExpectIdenticalTraces(BuildResNetMini(), DeviceRegistry::Reference());
}

TEST(RuntimeDeterminismTest, PerturbedRunsIdenticalAcrossThreads) {
  const Model model = BuildBertMini();
  Rng rng(0x7a1);
  const std::vector<Tensor> input = model.sample_input(rng);
  const Graph& graph = *model.graph;
  const Executor exec(graph, DeviceRegistry::ByName("RTX4090"));

  const NodeId victim = graph.op_nodes()[graph.op_nodes().size() / 2];
  Executor::Perturbation perturbation;
  perturbation.node = victim;
  perturbation.delta = Tensor::Full(graph.node(victim).shape, 1e-3f);

  const ExecutionTrace baseline = exec.RunPerturbed(input, {perturbation});
  for (const int threads : {2, 8}) {
    ExecutorOptions options;
    options.num_threads = threads;
    const ExecutionTrace trace = exec.RunPerturbed(input, {perturbation}, options);
    for (const NodeId id : graph.op_nodes()) {
      ASSERT_TRUE(BitwiseEqual(trace.value(id), baseline.value(id)))
          << "perturbed node " << id << " diverged at num_threads=" << threads;
    }
  }
}

TEST(RuntimeDeterminismTest, ArenaSavesAllocationsOnDeepGraph) {
  const Model model = BuildBertMini();
  Rng rng(0x7a2);
  const std::vector<Tensor> input = model.sample_input(rng);
  const Executor exec(*model.graph, DeviceRegistry::Reference());

  ExecutorOptions options;
  options.reuse_buffers = true;
  TensorArena::Stats stats;
  (void)exec.RunOutput(input, options, &stats);
  // A deep transformer re-uses intermediate buffers heavily: a meaningful fraction
  // of allocation requests must be served from the pool.
  EXPECT_GT(stats.pool_hits, stats.requests / 4)
      << "pool hits " << stats.pool_hits << " of " << stats.requests << " requests";
}

TEST(RuntimeDeterminismTest, ParallelDisputeGameMatchesSequentialVerdict) {
  const Model model = BuildBertMini();
  CalibrateOptions calib_options;
  calib_options.num_samples = 4;
  const Calibration calibration = Calibrate(model, DeviceRegistry::Fleet(), calib_options);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);
  const ModelCommitment commitment(*model.graph, thresholds);

  Rng rng(0x7a4);
  const std::vector<Tensor> input = model.sample_input(rng);
  const Graph& g = *model.graph;
  const NodeId target = g.op_nodes()[g.num_ops() / 3];
  Rng delta_rng(0x7a5);
  const Tensor delta = Tensor::Randn(g.node(target).shape, delta_rng, 5e-2f);
  const std::vector<Executor::Perturbation> cheat = {{target, delta}};

  DisputeResult baseline;
  {
    Coordinator coordinator;
    DisputeGame game(model, commitment, thresholds, coordinator);
    baseline = game.Run(input, DeviceRegistry::ByName("H100"),
                        DeviceRegistry::ByName("RTX4090"), cheat);
  }
  ASSERT_TRUE(baseline.proposer_guilty);
  ASSERT_EQ(baseline.leaf_op, target);

  for (const bool speculative : {false, true}) {
    Coordinator coordinator;
    DisputeOptions options;
    options.num_threads = 4;
    options.speculative_reexecution = speculative;
    DisputeGame game(model, commitment, thresholds, coordinator, options);
    const DisputeResult result = game.Run(input, DeviceRegistry::ByName("H100"),
                                          DeviceRegistry::ByName("RTX4090"), cheat);
    // The runtime is bitwise deterministic, so every protocol-visible outcome —
    // verdict, localization, round count, on-chain gas — matches the sequential game.
    EXPECT_EQ(result.proposer_guilty, baseline.proposer_guilty);
    EXPECT_EQ(result.leaf_op, baseline.leaf_op);
    EXPECT_EQ(result.final_state, baseline.final_state);
    EXPECT_EQ(result.rounds, baseline.rounds);
    EXPECT_EQ(result.total_merkle_checks, baseline.total_merkle_checks);
    EXPECT_EQ(result.gas_used, baseline.gas_used);
    if (!speculative) {
      // Lazy scheduling also performs the exact same amount of challenger work.
      EXPECT_EQ(result.challenger_flops, baseline.challenger_flops);
    } else {
      // Speculation may do extra (honestly accounted) work, never less.
      EXPECT_GE(result.challenger_flops, baseline.challenger_flops);
    }
  }
}

TEST(RuntimeDeterminismTest, AdaptiveSliceLearningKeepsVerdictsAndAdapts) {
  // adaptive_slice_learning replaces the STATIC speculation ceiling with an
  // EWMA-learned one. Like every speculation knob it may only move scheduling
  // and DCR accounting: the verdict, localization, round count, Merkle checks,
  // and gas must match the non-learning adaptive game exactly.
  const Model model = BuildBertMini();
  CalibrateOptions calib_options;
  calib_options.num_samples = 4;
  const Calibration calibration = Calibrate(model, DeviceRegistry::Fleet(), calib_options);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);
  const ModelCommitment commitment(*model.graph, thresholds);

  Rng rng(0x7b4);
  const std::vector<Tensor> input = model.sample_input(rng);
  const Graph& g = *model.graph;
  const NodeId target = g.op_nodes()[g.num_ops() / 2];
  Rng delta_rng(0x7b5);
  const Tensor delta = Tensor::Randn(g.node(target).shape, delta_rng, 5e-2f);
  const std::vector<Executor::Perturbation> cheat = {{target, delta}};

  const auto run_game = [&](bool learning) {
    Coordinator coordinator;
    DisputeOptions options;
    options.num_threads = 4;
    options.partition_n = 4;  // adaptive speculation requires a wide partition
    options.adaptive_speculation = true;
    options.adaptive_slice_learning = learning;
    DisputeGame game(model, commitment, thresholds, coordinator, options);
    return game.Run(input, DeviceRegistry::ByName("H100"),
                    DeviceRegistry::ByName("RTX4090"), cheat);
  };

  const DisputeResult baseline = run_game(false);
  ASSERT_TRUE(baseline.proposer_guilty);
  ASSERT_EQ(baseline.leaf_op, target);
  // Learning is off: the result carries no learned state.
  EXPECT_EQ(baseline.learned_slice_limit, 0);
  EXPECT_EQ(baseline.speculative_waste_ewma, 0.0);

  const DisputeResult learned = run_game(true);
  EXPECT_EQ(learned.proposer_guilty, baseline.proposer_guilty);
  EXPECT_EQ(learned.leaf_op, baseline.leaf_op);
  EXPECT_EQ(learned.final_state, baseline.final_state);
  EXPECT_EQ(learned.rounds, baseline.rounds);
  EXPECT_EQ(learned.total_merkle_checks, baseline.total_merkle_checks);
  EXPECT_EQ(learned.gas_used, baseline.gas_used);
  // The late rounds of any multi-round game have slices under the default
  // ceiling, so the learner must have observed at least one speculated round.
  ASSERT_GT(baseline.rounds, 1);
  EXPECT_GE(learned.learned_slice_limit, 1);
  EXPECT_LE(learned.learned_slice_limit, 4 * DisputeOptions{}.speculative_slice_limit);
  EXPECT_GE(learned.speculative_waste_ewma, 0.0);
  EXPECT_LE(learned.speculative_waste_ewma, 1.0);
}

TEST(RuntimeDeterminismTest, ConcurrentDecodePairMatchesSequential) {
  const Model model = BuildQwenMini();
  Rng rng(0x7a3);
  std::vector<float> prompt;
  const int64_t window = model.graph->node(model.graph->input_nodes()[0]).shape.numel();
  for (int64_t i = 0; i < window; ++i) {
    prompt.push_back(static_cast<float>(rng.NextU64() % 512));
  }
  const TieBreakConfig tie_break;
  const DeviceProfile& proposer_device = DeviceRegistry::ByName("H100");
  const DeviceProfile& challenger_device = DeviceRegistry::ByName("RTX4090");

  const DecodeResult seq_proposer = Decode(model, prompt, 4, proposer_device, tie_break);
  const DecodeResult seq_challenger = Decode(model, prompt, 4, challenger_device, tie_break);

  ExecutorOptions exec_options;
  exec_options.num_threads = 4;
  const DecodePair pair = DecodeBothParties(model, prompt, 4, proposer_device,
                                            challenger_device, tie_break, {}, exec_options);
  EXPECT_EQ(pair.proposer.temporal_root, seq_proposer.temporal_root);
  EXPECT_EQ(pair.challenger.temporal_root, seq_challenger.temporal_root);
  ASSERT_EQ(pair.proposer.steps.size(), seq_proposer.steps.size());
  for (size_t s = 0; s < pair.proposer.steps.size(); ++s) {
    EXPECT_EQ(pair.proposer.steps[s].token, seq_proposer.steps[s].token);
  }
}

}  // namespace
}  // namespace tao
