// Sharded-coordinator suite. Two layers:
//
//   * Pure state-machine tests: shard-local id assignment, per-shard clock
//     isolation, fold-on-read global snapshots, and the metered per-claim gas
//     charge that replaced the old mutable_gas() escape hatch.
//
//   * The shard-sweep bitwise-equivalence suite: one accepted submission order is
//     pushed through the service for shards {1, 2, 8, 32} x workers {1, 2, 8}.
//     Per-claim outcomes (C0, verdicts, per-claim gas) must match the sequential
//     reference for EVERY configuration; and for every shard of every
//     configuration, the shard's ledger, gas accumulator, clock, and claim records
//     must be bitwise identical to a sequential replay of that shard's claim
//     subsequence on a fresh single-shard coordinator — the per-shard determinism
//     contract of docs/coordinator.md. The replay drives coordinator actions only
//     (no model re-execution), reconstructed from the delivered DisputeResults.
//
// The whole suite must run TSan-clean (CI runs it in the tsan job).

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/service/verification_service.h"
#include "tests/replay_harness.h"
#include "tests/test_claims.h"

namespace tao {
namespace {

// ----------------------------- pure state machine ------------------------------------

TEST(ShardedCoordinatorTest, ShardLocalIdAssignmentIsInterleavingIndependent) {
  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/10, /*num_shards=*/4);
  ASSERT_EQ(coordinator.num_shards(), 4u);
  const Digest c0 = Sha256::Hash(std::string("id-layout"));
  // Shard s issues 1+s, 1+s+S, 1+s+2S, ... regardless of what other shards do.
  EXPECT_EQ(coordinator.SubmitCommitment(c0, 10, 1.0, /*shard=*/2), 3u);
  EXPECT_EQ(coordinator.SubmitCommitment(c0, 10, 1.0, /*shard=*/0), 1u);
  EXPECT_EQ(coordinator.SubmitCommitment(c0, 10, 1.0, /*shard=*/2), 7u);
  EXPECT_EQ(coordinator.SubmitCommitment(c0, 10, 1.0, /*shard=*/3), 4u);
  EXPECT_EQ(coordinator.SubmitCommitment(c0, 10, 1.0, /*shard=*/0), 5u);
  // Hints wrap mod S.
  EXPECT_EQ(coordinator.SubmitCommitment(c0, 10, 1.0, /*shard=*/6), 11u);
  EXPECT_EQ(coordinator.shard_of(3), 2u);
  EXPECT_EQ(coordinator.shard_of(11), 2u);
  EXPECT_EQ(coordinator.shard_of(1), 0u);
  EXPECT_EQ(coordinator.shard_claims(2), (std::vector<ClaimId>{3, 7, 11}));
  EXPECT_TRUE(coordinator.shard_claims(1).empty());
}

TEST(ShardedCoordinatorTest, SingleShardKeepsHistoricalDenseIds) {
  Coordinator coordinator;  // num_shards = 1
  const Digest c0 = Sha256::Hash(std::string("dense"));
  for (ClaimId expected = 1; expected <= 5; ++expected) {
    // Any hint lands on the only shard and the sequence stays 1, 2, 3, ...
    EXPECT_EQ(coordinator.SubmitCommitment(c0, 10, 1.0, /*shard=*/expected * 7), expected);
  }
}

TEST(ShardedCoordinatorTest, PerClaimTimeAdvancesOnlyTheOwningShardClock) {
  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/10, /*num_shards=*/2);
  const Digest c0 = Sha256::Hash(std::string("clocks"));
  const ClaimId on_shard0 = coordinator.SubmitCommitment(c0, 50, 1.0, /*shard=*/0);
  const ClaimId on_shard1 = coordinator.SubmitCommitment(c0, 50, 1.0, /*shard=*/1);

  coordinator.AdvanceTimeFor(on_shard0, 50);
  EXPECT_EQ(coordinator.shard_now(0), 50u);
  EXPECT_EQ(coordinator.shard_now(1), 0u);
  // Shard 0's claim finalizes; shard 1's window has not moved at all.
  EXPECT_EQ(coordinator.TryFinalize(on_shard0), ClaimState::kFinalized);
  EXPECT_EQ(coordinator.TryFinalize(on_shard1), ClaimState::kCommitted);
  // The shard-1 claim is still challengeable — its shard's clock is untouched.
  coordinator.OpenChallenge(on_shard1, 1.0);
  EXPECT_EQ(coordinator.claim(on_shard1).state, ClaimState::kDisputed);

  // The global advance moves every shard.
  coordinator.AdvanceTime(7);
  EXPECT_EQ(coordinator.shard_now(0), 57u);
  EXPECT_EQ(coordinator.shard_now(1), 7u);
}

TEST(ShardedCoordinatorTest, GlobalReadsFoldAcrossShards) {
  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/10, /*num_shards=*/3);
  const Digest c0 = Sha256::Hash(std::string("fold"));
  const ClaimId a = coordinator.SubmitCommitment(c0, 100, 10.0, /*shard=*/0);
  const ClaimId b = coordinator.SubmitCommitment(c0, 100, 10.0, /*shard=*/1);
  coordinator.SubmitCommitment(c0, 100, 10.0, /*shard=*/2);
  coordinator.OpenChallenge(a, 2.0);
  coordinator.RecordLeafAdjudication(a, /*proposer_guilty=*/true, 0.5);
  coordinator.OpenChallenge(b, 2.0);
  coordinator.RecordLeafAdjudication(b, /*proposer_guilty=*/false, 0.5);

  Balances folded;
  int64_t gas_folded = 0;
  for (size_t shard = 0; shard < coordinator.num_shards(); ++shard) {
    const Balances shard_balances = coordinator.shard_balances(shard);
    folded.proposer += shard_balances.proposer;
    folded.challenger += shard_balances.challenger;
    folded.treasury += shard_balances.treasury;
    gas_folded += coordinator.shard_gas(shard);
  }
  const Balances global = coordinator.balances();
  EXPECT_EQ(global.proposer, folded.proposer);
  EXPECT_EQ(global.challenger, folded.challenger);
  EXPECT_EQ(global.treasury, folded.treasury);
  EXPECT_EQ(coordinator.gas().total(), gas_folded);
  // Settled shards hold their own slash accounting.
  EXPECT_DOUBLE_EQ(coordinator.shard_balances(0).treasury, 5.0);
  EXPECT_DOUBLE_EQ(coordinator.shard_balances(1).treasury, 0.0);
}

TEST(ShardedCoordinatorTest, ChargeClaimGasMetersClaimShardAndGlobalTogether) {
  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/10, /*num_shards=*/2);
  const Digest c0 = Sha256::Hash(std::string("charge"));
  const ClaimId id = coordinator.SubmitCommitment(c0, 100, 10.0, /*shard=*/1);
  const int64_t before_claim = coordinator.claim_gas(id);
  const int64_t before_shard = coordinator.shard_gas(1);
  const int64_t before_global = coordinator.gas().total();

  coordinator.ChargeClaimGas(id, 12345);
  EXPECT_EQ(coordinator.claim_gas(id), before_claim + 12345);
  EXPECT_EQ(coordinator.shard_gas(1), before_shard + 12345);
  EXPECT_EQ(coordinator.gas().total(), before_global + 12345);
  EXPECT_EQ(coordinator.shard_gas(0), 0);  // no cross-shard bleed
}

// ------------------------- shard-sweep service equivalence ---------------------------

class ShardSweepFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new Model(BuildBertMini());
    CalibrateOptions options;
    options.num_samples = 4;
    thresholds_ = new ThresholdSet(
        Calibrate(*model_, DeviceRegistry::Fleet(), options).MakeThresholds(3.0));
    commitment_ = new ModelCommitment(*model_->graph, *thresholds_);
  }

  static void TearDownTestSuite() {
    delete commitment_;
    delete thresholds_;
    delete model_;
    commitment_ = nullptr;
    thresholds_ = nullptr;
    model_ = nullptr;
  }

  static Model* model_;
  static ThresholdSet* thresholds_;
  static ModelCommitment* commitment_;
};

Model* ShardSweepFixture::model_ = nullptr;
ThresholdSet* ShardSweepFixture::thresholds_ = nullptr;
ModelCommitment* ShardSweepFixture::commitment_ = nullptr;

// Deterministic marketplace-style cohort (shared generator; same mix and seeds as
// service_test so the two suites exercise the same workloads).
std::vector<BatchClaim> MakeClaims(const Model& model, size_t count, uint64_t seed) {
  return MakeTestClaims(model, count, seed, /*cheat_rate=*/0.4,
                        /*supervised_rate=*/0.6);
}

// Order-independent per-claim reference (each claim's lifecycle standalone).
struct ReferenceOutcome {
  Digest c0{};
  bool flagged = false;
  bool proposer_guilty = false;
  ClaimState final_state = ClaimState::kCommitted;
  int64_t gas_used = 0;
};

std::vector<ReferenceOutcome> RunSequentialReference(const Model& model,
                                                     const ModelCommitment& commitment,
                                                     const ThresholdSet& thresholds,
                                                     const std::vector<BatchClaim>& claims) {
  const Graph& graph = *model.graph;
  std::vector<ReferenceOutcome> outcomes;
  outcomes.reserve(claims.size());
  for (const BatchClaim& claim : claims) {
    ReferenceOutcome ref;
    Coordinator coordinator;
    if (claim.supervised()) {
      DisputeGame game(model, commitment, thresholds, coordinator, DisputeOptions{});
      const DisputeResult result = game.Run(claim.inputs, *claim.proposer_device,
                                            *claim.verifier_device, claim.perturbations);
      ref.c0 = coordinator.claim(result.claim_id).c0;
      ref.flagged = result.challenge_raised;
      ref.proposer_guilty = result.proposer_guilty;
      ref.final_state = result.final_state;
      ref.gas_used = result.gas_used;
    } else {
      const Executor exec(graph, *claim.proposer_device);
      const ExecutionTrace trace = exec.RunPerturbed(claim.inputs, claim.perturbations);
      ResultMeta meta;
      meta.device = claim.proposer_device->name;
      meta.challenge_window = DisputeOptions{}.challenge_window;
      ref.c0 = ComputeResultCommitment(commitment, claim.inputs,
                                       trace.value(graph.output()), meta);
      const ClaimId id = coordinator.SubmitCommitment(ref.c0, DisputeOptions{}.challenge_window,
                                                      DisputeOptions{}.proposer_bond);
      coordinator.AdvanceTime(DisputeOptions{}.challenge_window);
      ref.final_state = coordinator.TryFinalize(id);
      ref.gas_used = coordinator.claim_gas(id);
    }
    outcomes.push_back(ref);
  }
  return outcomes;
}

// The replay reconstruction itself now lives in tests/replay_harness.h (the
// durability harness replays the same action streams); this suite keeps the
// service sweep and calls the shared ReplayShardActions/ExpectShardMatchesReplay.

TEST_F(ShardSweepFixture, ShardSweepMatchesReferenceAndPerShardReplay) {
  constexpr size_t kClaims = 10;
  const std::vector<BatchClaim> claims = MakeClaims(*model_, kClaims, 0x5e2f1);
  const std::vector<ReferenceOutcome> reference =
      RunSequentialReference(*model_, *commitment_, *thresholds_, claims);
  int64_t reference_gas = 0;
  int64_t flagged = 0;
  for (const ReferenceOutcome& ref : reference) {
    reference_gas += ref.gas_used;
    flagged += ref.flagged ? 1 : 0;
  }
  ASSERT_GT(flagged, 0);  // the cohort must exercise the dispute path

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{8}, size_t{32}}) {
    for (const int workers : {1, 2, 8}) {
      const std::string label =
          "shards=" + std::to_string(shards) + " workers=" + std::to_string(workers);
      Coordinator coordinator(GasSchedule{}, /*round_timeout=*/10, shards);
      ServiceOptions options;
      options.num_workers = workers;
      options.queue_capacity = 4;  // force admission backpressure mid-run
      options.batching.initial_hint = 3;
      options.verifier.dispute.num_threads = 2;
      options.verifier.reuse_buffers = true;
      std::vector<std::shared_ptr<ClaimTicket>> tickets;
      {
        VerificationService service(*model_, *commitment_, *thresholds_, coordinator,
                                    options);
        ASSERT_EQ(service.num_lanes(), shards) << label;
        for (const BatchClaim& claim : claims) {
          tickets.push_back(service.Submit(claim));
          ASSERT_NE(tickets.back(), nullptr) << label;
        }
        service.Drain();
      }

      // Per-claim outcomes are configuration-independent: bitwise equal to the
      // standalone reference for every shard count and worker count.
      int64_t gas_total = 0;
      for (size_t i = 0; i < kClaims; ++i) {
        const BatchClaimOutcome& outcome = tickets[i]->Wait();
        EXPECT_EQ(outcome.c0, reference[i].c0) << label << ": claim " << i;
        EXPECT_EQ(outcome.flagged, reference[i].flagged) << label << ": claim " << i;
        EXPECT_EQ(outcome.proposer_guilty, reference[i].proposer_guilty)
            << label << ": claim " << i;
        EXPECT_EQ(outcome.final_state, reference[i].final_state)
            << label << ": claim " << i;
        EXPECT_EQ(outcome.gas_used, reference[i].gas_used) << label << ": claim " << i;
        gas_total += outcome.gas_used;
        // Claim-id layout: submission i rides lane i % S and is that lane's
        // (i / S)-th claim, so its id is fixed by the accepted order alone.
        const uint64_t lane = i % shards;
        EXPECT_EQ(outcome.claim_id, 1 + lane + (i / shards) * shards)
            << label << ": claim " << i;
      }
      // Gas is integer-summed, so the global fold is exact for every layout.
      EXPECT_EQ(coordinator.gas().total(), reference_gas) << label;
      EXPECT_EQ(gas_total, reference_gas) << label;

      // Per-shard replay equivalence: each shard's ledger, meter, clock, and claim
      // records are bitwise reproduced by replaying that shard's subsequence alone.
      for (size_t shard = 0; shard < shards; ++shard) {
        std::vector<const BatchClaimOutcome*> lane_outcomes;
        for (size_t i = shard; i < kClaims; i += shards) {
          lane_outcomes.push_back(&tickets[i]->Wait());
        }
        Coordinator replay;  // single shard
        ReplayShardActions(lane_outcomes, replay);
        ExpectShardMatchesReplay(coordinator, shard, replay,
                                 label + " shard=" + std::to_string(shard));
      }
    }
  }
}

TEST_F(ShardSweepFixture, UnorderedDeliveryKeepsPerShardDeterminism) {
  constexpr size_t kClaims = 8;
  constexpr size_t kShards = 4;
  const std::vector<BatchClaim> claims = MakeClaims(*model_, kClaims, 0x5e2f1);
  const std::vector<ReferenceOutcome> reference =
      RunSequentialReference(*model_, *commitment_, *thresholds_, claims);

  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/10, kShards);
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 4;
  options.unordered_delivery = true;
  options.batching.initial_hint = 3;
  options.verifier.dispute.num_threads = 2;
  options.verifier.reuse_buffers = true;
  std::vector<std::shared_ptr<ClaimTicket>> tickets;
  {
    VerificationService service(*model_, *commitment_, *thresholds_, coordinator,
                                options);
    for (const BatchClaim& claim : claims) {
      tickets.push_back(service.Submit(claim));
      ASSERT_NE(tickets.back(), nullptr);
    }
    service.Drain();
  }

  // Delivery order is relaxed; outcomes and per-shard state are not.
  for (size_t i = 0; i < kClaims; ++i) {
    const BatchClaimOutcome& outcome = tickets[i]->Wait();
    EXPECT_EQ(outcome.c0, reference[i].c0) << "claim " << i;
    EXPECT_EQ(outcome.flagged, reference[i].flagged) << "claim " << i;
    EXPECT_EQ(outcome.proposer_guilty, reference[i].proposer_guilty) << "claim " << i;
    EXPECT_EQ(outcome.final_state, reference[i].final_state) << "claim " << i;
    EXPECT_EQ(outcome.gas_used, reference[i].gas_used) << "claim " << i;
  }
  for (size_t shard = 0; shard < kShards; ++shard) {
    std::vector<const BatchClaimOutcome*> lane_outcomes;
    for (size_t i = shard; i < kClaims; i += kShards) {
      lane_outcomes.push_back(&tickets[i]->Wait());
    }
    Coordinator replay;
    ReplayShardActions(lane_outcomes, replay);
    ExpectShardMatchesReplay(coordinator, shard, replay,
                             "shard " + std::to_string(shard));
  }
}

}  // namespace
}  // namespace tao
