// Property-based fuzzing over random DAGs: for each seeded random graph, check the
// invariants the protocol relies on —
//   * execution is deterministic per device and finite;
//   * deterministic theoretical bounds cover cross-device deviation operator-by-
//     operator (the soundness core of Sec. 3.1);
//   * slice-by-slice re-execution reproduces monolithic runs bit-for-bit;
//   * every canonical partition covers the op list without overlap;
//   * calibrated thresholds accept fresh honest cross-device runs (no false
//     positives) and flag injected perturbations at the output.

#include <cmath>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/graph/executor.h"
#include "src/graph/random_graph.h"
#include "src/graph/subgraph.h"

namespace tao {
namespace {

class FuzzGraphTest : public ::testing::TestWithParam<uint64_t> {};

RandomGraphResult MakeGraph(uint64_t seed) {
  RandomGraphOptions options;
  options.seed = seed;
  options.num_ops = 24 + static_cast<int64_t>(seed % 17);
  return BuildRandomGraph(options);
}

TEST_P(FuzzGraphTest, ExecutesFiniteAndDeterministic) {
  const RandomGraphResult rg = MakeGraph(GetParam());
  Rng rng(GetParam() ^ 0x11);
  const Tensor input = rg.SampleInput(rng);
  for (const DeviceProfile& device : DeviceRegistry::Fleet()) {
    const Executor exec(*rg.graph, device);
    const Tensor a = exec.RunOutput({input});
    const Tensor b = exec.RunOutput({input});
    EXPECT_EQ(MaxAbsDiff(a, b), 0.0) << device.name;
    for (const float v : a.values()) {
      ASSERT_TRUE(std::isfinite(v)) << device.name;
    }
  }
}

TEST_P(FuzzGraphTest, DeterministicBoundsCoverCrossDeviceDeviationPerOperator) {
  const RandomGraphResult rg = MakeGraph(GetParam());
  Rng rng(GetParam() ^ 0x22);
  const Tensor input = rg.SampleInput(rng);
  ExecutorOptions options;
  options.with_bounds = true;
  options.bound_mode = BoundMode::kDeterministic;

  // Compare every fleet pair operator-by-operator: since both runs start from the
  // same inputs and bounds are operator-local, the *first* operator where inputs
  // agree must satisfy |y_a - y_b| <= tau_a + tau_b. Downstream operators see
  // diverged inputs, so the operator-local bound no longer applies there (that is
  // exactly why TAO localizes instead of propagating); we therefore check ops whose
  // inputs are still bitwise-equal across the two traces.
  const auto& fleet = DeviceRegistry::Fleet();
  for (size_t da = 0; da < fleet.size(); ++da) {
    for (size_t db = da + 1; db < fleet.size(); ++db) {
      const Executor ea(*rg.graph, fleet[da]);
      const Executor eb(*rg.graph, fleet[db]);
      const ExecutionTrace ta = ea.Run({input}, options);
      const ExecutionTrace tb = eb.Run({input}, options);
      int checked = 0;
      for (const NodeId id : rg.graph->op_nodes()) {
        const Node& node = rg.graph->node(id);
        bool inputs_equal = true;
        for (const NodeId in : node.inputs) {
          if (MaxAbsDiff(ta.value(in), tb.value(in)) != 0.0) {
            inputs_equal = false;
            break;
          }
        }
        if (!inputs_equal) {
          continue;
        }
        ++checked;
        const auto va = ta.value(id).values();
        const auto vb = tb.value(id).values();
        const auto ba = ta.bound(id).values();
        const auto bb = tb.bound(id).values();
        for (size_t i = 0; i < va.size(); ++i) {
          const double diff =
              std::abs(static_cast<double>(va[i]) - static_cast<double>(vb[i]));
          ASSERT_LE(diff, ba[i] + bb[i])
              << node.label << " (" << node.op << ") elem " << i << " devices "
              << fleet[da].name << "/" << fleet[db].name;
        }
      }
      EXPECT_GT(checked, 0);
    }
  }
}

TEST_P(FuzzGraphTest, SliceReexecutionMatchesMonolithic) {
  const RandomGraphResult rg = MakeGraph(GetParam());
  Rng rng(GetParam() ^ 0x33);
  const Tensor input = rg.SampleInput(rng);
  const DeviceProfile& device = DeviceRegistry::ByName("H100");
  const Executor exec(*rg.graph, device);
  const ExecutionTrace full = exec.Run({input});
  for (const int64_t n : {2, 3, 5}) {
    for (const Slice& slice : PartitionSlice(Slice{0, rg.graph->num_ops()}, n)) {
      const Frontier frontier = ComputeFrontier(*rg.graph, slice);
      std::map<NodeId, Tensor> boundary;
      for (const NodeId in : frontier.live_in) {
        boundary.emplace(in, full.value(in));
      }
      const auto values = ExecuteSlice(*rg.graph, device, slice, boundary);
      for (const auto& [id, value] : values) {
        ASSERT_EQ(MaxAbsDiff(value, full.value(id)), 0.0)
            << "node " << id << " slice [" << slice.begin << "," << slice.end << ") n=" << n;
      }
    }
  }
}

TEST_P(FuzzGraphTest, PartitionsCoverWithoutOverlapAtAllWidths) {
  const RandomGraphResult rg = MakeGraph(GetParam());
  const int64_t total = rg.graph->num_ops();
  for (int64_t n = 2; n <= 16; ++n) {
    const auto parts = PartitionSlice(Slice{0, total}, n);
    int64_t cursor = 0;
    for (const Slice& s : parts) {
      ASSERT_EQ(s.begin, cursor);
      ASSERT_GT(s.size(), 0);
      cursor = s.end;
    }
    ASSERT_EQ(cursor, total);
  }
}

TEST_P(FuzzGraphTest, CalibratedThresholdsAcceptHonestFlagPerturbed) {
  const RandomGraphResult rg = MakeGraph(GetParam());
  Model model;
  model.name = "fuzz";
  model.graph = rg.graph;
  const Shape input_shape = rg.input_shape;
  model.sample_input = [input_shape](Rng& r) {
    return std::vector<Tensor>{Tensor::Randn(input_shape, r)};
  };
  CalibrateOptions options;
  options.num_samples = 5;
  options.seed = GetParam() ^ 0x44;
  const Calibration calibration = Calibrate(model, DeviceRegistry::Fleet(), options);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);

  Rng rng(GetParam() ^ 0x55);
  const std::vector<Tensor> input = model.sample_input(rng);
  const Executor proposer(*rg.graph, DeviceRegistry::ByName("A100"));
  const Executor challenger(*rg.graph, DeviceRegistry::ByName("RTX6000"));
  const ExecutionTrace honest = proposer.Run(input);
  const ExecutionTrace reference = challenger.Run(input);
  const NodeId output = rg.graph->output();
  EXPECT_FALSE(thresholds.Exceeds(output, honest.value(output), reference.value(output)));

  // Inject at the output itself (always causally visible there).
  Rng delta_rng(GetParam() ^ 0x66);
  const Tensor delta = Tensor::Randn(rg.graph->node(output).shape, delta_rng, 1e-2f);
  const ExecutionTrace bad = proposer.RunPerturbed(input, {{output, delta}});
  EXPECT_TRUE(thresholds.Exceeds(output, bad.value(output), reference.value(output)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzGraphTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace tao
