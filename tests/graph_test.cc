// Graph IR, executor, and subgraph tests: shape inference through graphs, trace
// completeness, perturbation injection, frontier computation, canonical partitioning,
// and the key compositionality property — executing a graph slice-by-slice from
// committed boundaries reproduces the monolithic execution bit-for-bit on the same
// device.

#include <gtest/gtest.h>

#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/graph/subgraph.h"
#include "src/util/rng.h"

namespace tao {
namespace {

// A small MLP graph: x -> linear -> relu -> linear -> softmax.
Graph BuildMlp(Rng& rng, int64_t in = 8, int64_t hidden = 16, int64_t out = 4) {
  Graph g;
  const NodeId x = g.AddInput("x", Shape{2, in});
  const NodeId w1 = g.AddParam("w1", Tensor::Randn(Shape{hidden, in}, rng, 0.3f));
  const NodeId b1 = g.AddParam("b1", Tensor::Randn(Shape{hidden}, rng, 0.1f));
  const NodeId w2 = g.AddParam("w2", Tensor::Randn(Shape{out, hidden}, rng, 0.3f));
  const NodeId b2 = g.AddParam("b2", Tensor::Randn(Shape{out}, rng, 0.1f));
  const NodeId h1 = g.AddOp("linear", "fc1", {x, w1, b1});
  const NodeId a1 = g.AddOp("relu", "relu1", {h1});
  const NodeId h2 = g.AddOp("linear", "fc2", {a1, w2, b2});
  Attrs sm;
  sm.Set("axis", static_cast<int64_t>(-1));
  g.AddOp("softmax", "probs", {h2}, sm);
  return g;
}

TEST(GraphTest, TopologicalOrderIsInsertionOrder) {
  Rng rng(1);
  const Graph g = BuildMlp(rng);
  EXPECT_EQ(g.num_ops(), 4);
  for (size_t i = 1; i < g.op_nodes().size(); ++i) {
    EXPECT_LT(g.op_nodes()[i - 1], g.op_nodes()[i]);
  }
}

TEST(GraphTest, ShapeInferenceThroughGraph) {
  Rng rng(2);
  const Graph g = BuildMlp(rng);
  EXPECT_EQ(g.node(g.output()).shape, Shape({2, 4}));
}

TEST(GraphTest, SignaturesAreUniqueAndAttrSensitive) {
  Rng rng(3);
  const Graph g = BuildMlp(rng);
  std::set<std::string> signatures;
  for (const Node& n : g.nodes()) {
    signatures.insert(g.NodeSignature(n.id));
  }
  EXPECT_EQ(signatures.size(), static_cast<size_t>(g.num_nodes()));
}

TEST(GraphTest, TotalFlopsPositiveAndAdditive) {
  Rng rng(4);
  const Graph g = BuildMlp(rng);
  int64_t sum = 0;
  for (const NodeId id : g.op_nodes()) {
    sum += g.NodeFlops(id);
  }
  EXPECT_EQ(g.TotalFlops(), sum);
  EXPECT_GT(g.TotalFlops(), 0);
}

TEST(ExecutorTest, DeterministicPerDevice) {
  Rng rng(5);
  const Graph g = BuildMlp(rng);
  Rng in_rng(6);
  const Tensor x = Tensor::Randn(Shape{2, 8}, in_rng);
  for (const DeviceProfile& d : DeviceRegistry::Fleet()) {
    const Executor exec(g, d);
    const Tensor y1 = exec.RunOutput({x});
    const Tensor y2 = exec.RunOutput({x});
    EXPECT_EQ(MaxAbsDiff(y1, y2), 0.0) << d.name;
  }
}

TEST(ExecutorTest, CrossDeviceOutputsDifferSlightly) {
  Rng rng(7);
  Graph g = BuildMlp(rng, 64, 256, 32);
  Rng in_rng(8);
  const Tensor x = Tensor::Randn(Shape{2, 64}, in_rng);
  const Executor ref(g, DeviceRegistry::Reference());
  const Tensor y_ref = ref.RunOutput({x});
  int differing = 0;
  for (const DeviceProfile& d : DeviceRegistry::Fleet()) {
    const Executor exec(g, d);
    const Tensor y = exec.RunOutput({x});
    const double diff = MaxAbsDiff(y, y_ref);
    EXPECT_LT(diff, 1e-3) << d.name << " deviation too large for honest execution";
    if (diff > 0.0) {
      ++differing;
    }
  }
  EXPECT_GE(differing, 2) << "heterogeneous fleet should disagree in low-order bits";
}

TEST(ExecutorTest, TraceContainsEveryNode) {
  Rng rng(9);
  const Graph g = BuildMlp(rng);
  Rng in_rng(10);
  const Tensor x = Tensor::Randn(Shape{2, 8}, in_rng);
  const Executor exec(g, DeviceRegistry::Reference());
  const ExecutionTrace trace = exec.Run({x});
  EXPECT_EQ(static_cast<int64_t>(trace.values.size()), g.num_nodes());
  for (const Node& n : g.nodes()) {
    EXPECT_EQ(trace.value(n.id).shape(), n.shape) << n.label;
  }
}

TEST(ExecutorTest, BoundsCoExecutionProducesPositiveBounds) {
  Rng rng(11);
  const Graph g = BuildMlp(rng);
  Rng in_rng(12);
  const Tensor x = Tensor::Randn(Shape{2, 8}, in_rng);
  const Executor exec(g, DeviceRegistry::Reference());
  ExecutorOptions opts;
  opts.with_bounds = true;
  const ExecutionTrace trace = exec.Run({x}, opts);
  ASSERT_TRUE(trace.has_bounds);
  // Linear layers must carry strictly positive bounds; relu is exact (zero).
  const NodeId fc1 = g.op_nodes()[0];
  const NodeId relu = g.op_nodes()[1];
  double fc1_max = 0.0;
  for (const double b : trace.bound(fc1).values()) {
    fc1_max = std::max(fc1_max, b);
  }
  EXPECT_GT(fc1_max, 0.0);
  for (const double b : trace.bound(relu).values()) {
    EXPECT_EQ(b, 0.0);
  }
}

TEST(ExecutorTest, PerturbationChangesTraceAtAndAfterNode) {
  Rng rng(13);
  const Graph g = BuildMlp(rng);
  Rng in_rng(14);
  const Tensor x = Tensor::Randn(Shape{2, 8}, in_rng);
  const Executor exec(g, DeviceRegistry::Reference());
  const ExecutionTrace honest = exec.Run({x});

  const NodeId target = g.op_nodes()[1];  // relu output
  Tensor delta = Tensor::Zeros(g.node(target).shape);
  delta.mutable_values()[0] = 0.5f;
  const ExecutionTrace bad = exec.RunPerturbed({x}, {{target, delta}});

  EXPECT_EQ(MaxAbsDiff(honest.value(g.op_nodes()[0]), bad.value(g.op_nodes()[0])), 0.0);
  EXPECT_GT(MaxAbsDiff(honest.value(target), bad.value(target)), 0.0);
  EXPECT_GT(MaxAbsDiff(honest.value(g.output()), bad.value(g.output())), 0.0);
}

// ------------------------------- subgraph machinery --------------------------------

TEST(SubgraphTest, FrontierOfFullGraph) {
  Rng rng(15);
  const Graph g = BuildMlp(rng);
  const Frontier f = ComputeFrontier(g, Slice{0, g.num_ops()});
  ASSERT_EQ(f.live_in.size(), 1u);
  EXPECT_EQ(g.node(f.live_in[0]).kind, NodeKind::kInput);
  EXPECT_EQ(f.params.size(), 4u);
  ASSERT_EQ(f.live_out.size(), 1u);
  EXPECT_EQ(f.live_out[0], g.output());
}

TEST(SubgraphTest, FrontierOfInteriorSlice) {
  Rng rng(16);
  const Graph g = BuildMlp(rng);
  // Slice covering only relu (op index 1).
  const Frontier f = ComputeFrontier(g, Slice{1, 2});
  ASSERT_EQ(f.live_in.size(), 1u);
  EXPECT_EQ(f.live_in[0], g.op_nodes()[0]);
  EXPECT_TRUE(f.params.empty());
  ASSERT_EQ(f.live_out.size(), 1u);
  EXPECT_EQ(f.live_out[0], g.op_nodes()[1]);
}

TEST(SubgraphTest, PartitionCoversWithoutOverlap) {
  for (const int64_t total : {5, 8, 12, 100}) {
    for (const int64_t n : {2, 3, 4, 7, 16}) {
      const auto parts = PartitionSlice(Slice{0, total}, n);
      EXPECT_EQ(static_cast<int64_t>(parts.size()), std::min(n, total));
      int64_t cursor = 0;
      for (const Slice& s : parts) {
        EXPECT_EQ(s.begin, cursor);
        EXPECT_GT(s.size(), 0);
        cursor = s.end;
      }
      EXPECT_EQ(cursor, total);
      // Near-equal sizes: max-min <= 1.
      int64_t min_size = total;
      int64_t max_size = 0;
      for (const Slice& s : parts) {
        min_size = std::min(min_size, s.size());
        max_size = std::max(max_size, s.size());
      }
      EXPECT_LE(max_size - min_size, 1);
    }
  }
}

TEST(SubgraphTest, PartitionIsDeterministic) {
  const auto a = PartitionSlice(Slice{10, 55}, 4);
  const auto b = PartitionSlice(Slice{10, 55}, 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(SubgraphTest, SliceExecutionMatchesMonolithicRun) {
  Rng rng(17);
  const Graph g = BuildMlp(rng, 16, 32, 8);
  Rng in_rng(18);
  const Tensor x = Tensor::Randn(Shape{2, 16}, in_rng);
  const DeviceProfile& device = DeviceRegistry::ByName("A100");
  const Executor exec(g, device);
  const ExecutionTrace full = exec.Run({x});

  // Execute each of 2 partitions from boundaries taken out of the full trace; results
  // must agree exactly (same device, same order).
  for (const Slice& s : PartitionSlice(Slice{0, g.num_ops()}, 2)) {
    const Frontier f = ComputeFrontier(g, s);
    std::map<NodeId, Tensor> boundary;
    for (const NodeId in : f.live_in) {
      boundary.emplace(in, full.value(in));
    }
    const auto values = ExecuteSlice(g, device, s, boundary);
    for (const auto& [id, value] : values) {
      EXPECT_EQ(MaxAbsDiff(value, full.value(id)), 0.0) << "node " << id;
    }
  }
}

TEST(SubgraphTest, SliceFlopsSumToTotal) {
  Rng rng(19);
  const Graph g = BuildMlp(rng);
  const auto parts = PartitionSlice(Slice{0, g.num_ops()}, 3);
  int64_t sum = 0;
  for (const Slice& s : parts) {
    sum += SliceFlops(g, s);
  }
  EXPECT_EQ(sum, g.TotalFlops());
}

}  // namespace
}  // namespace tao
