// Network front-end suite (src/net): wire codecs, the framed RPC server over the
// ServingGateway, and the retriable client channel. Four layers:
//
//   * Framing: round-trips for every message type, torn prefixes reported as
//     kTorn (wait, don't drop), and every corruption mode as its DISTINCT typed
//     status — there is no resync, so typing matters.
//
//   * Canonical codecs: accepted payloads re-encode byte-identical, and the
//     non-canonical encodings (reject acks carrying tickets, out-of-range claim
//     states, trailing bytes) are refused. A seed-parameterized fuzz sweep
//     (mutate / truncate / extend / random soup) drives "never crash, never
//     read out of bounds, accept-but-differ impossible" over every decoder.
//
//   * Loopback end-to-end: client threads x connections against a 3-model
//     gateway; each model's remote verdicts, claim ids, C0 digests, gas, and
//     ledger must be bitwise identical to a sequential reference replay of the
//     ACCEPTED order the server's ack tickets define — the per-model determinism
//     contract of docs/net.md, under real connection interleaving.
//
//   * Failure modes: lifecycle rejects crossing the wire with their distinct
//     codes, kOverloaded as live backpressure, and connection kills mid-burst
//     with the RetriableChannel resubmitting — the server's dedup window must
//     make retries exactly-once (no duplicate claims, ledger conserved).
//
// The whole suite must run TSan-clean (CI runs it in the tsan job).

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/net/client_channel.h"
#include "src/registry/serving_gateway.h"
#include "tests/test_claims.h"

namespace tao {
namespace {

// --------------------------------- fixtures ------------------------------------------

// Three small MLP variants: the net suite exercises transport, not model width, so
// the zoo is narrow and cheap. Distinct seeds/dims keep the models' outcomes
// distinguishable (a cross-model routing bug cannot pass by coincidence).
Model BuildNetModel(int variant) {
  WideMlpConfig config;
  config.input_dim = 48 + 16 * variant;
  config.hidden_dim = 32;
  config.num_classes = 16;
  config.seed = 0x5eed0 + static_cast<uint64_t>(variant);
  return BuildWideMlp(config);
}

struct CommittedModel {
  Model model;
  std::unique_ptr<ThresholdSet> thresholds;
  std::unique_ptr<ModelCommitment> commitment;
};

CommittedModel MakeCommitted(Model model) {
  CommittedModel committed;
  committed.model = std::move(model);
  CalibrateOptions options;
  options.num_samples = 3;
  committed.thresholds = std::make_unique<ThresholdSet>(
      Calibrate(committed.model, DeviceRegistry::Fleet(), options).MakeThresholds(3.0));
  committed.commitment =
      std::make_unique<ModelCommitment>(*committed.model.graph, *committed.thresholds);
  return committed;
}

class NetFixture : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    models_ = new std::vector<CommittedModel>();
    for (int variant = 0; variant < 3; ++variant) {
      models_->push_back(MakeCommitted(BuildNetModel(variant)));
    }
  }

  static void TearDownTestSuite() {
    delete models_;
    models_ = nullptr;
  }

  static std::vector<CommittedModel>* models_;
};

std::vector<CommittedModel>* NetFixture::models_ = nullptr;

// Registers and commits fixture models [0, count) into `registry` with `shards`
// coordinator shards each; returns the assigned ids.
std::vector<ModelId> CommitModels(ModelRegistry& registry, size_t count, size_t shards) {
  std::vector<ModelId> ids;
  for (size_t m = 0; m < count; ++m) {
    const CommittedModel& committed = (*NetFixture::models_)[m];
    const ModelId id = registry.Register(committed.model);
    ModelCommitConfig config;
    config.coordinator_shards = shards;
    registry.Commit(id, *committed.commitment, *committed.thresholds, config);
    ids.push_back(id);
  }
  return ids;
}

// Reference outcome of one claim under the model's sequential path (the same
// replay registry_gateway_test uses: claim i homes to shard i % S, exactly the
// service's lane assignment over a dense accepted order).
struct ReferenceOutcome {
  ClaimId claim_id = 0;
  Digest c0{};
  bool flagged = false;
  bool proposer_guilty = false;
  ClaimState final_state = ClaimState::kCommitted;
  int64_t gas_used = 0;
};

std::vector<ReferenceOutcome> RunSequentialReference(const CommittedModel& committed,
                                                     const std::vector<BatchClaim>& claims,
                                                     Coordinator& coordinator) {
  const Graph& graph = *committed.model.graph;
  const size_t shards = coordinator.num_shards();
  std::vector<ReferenceOutcome> outcomes;
  outcomes.reserve(claims.size());
  for (size_t i = 0; i < claims.size(); ++i) {
    const BatchClaim& claim = claims[i];
    const uint64_t shard = i % shards;
    ReferenceOutcome ref;
    if (claim.supervised()) {
      DisputeOptions options;
      options.coordinator_shard = shard;
      DisputeGame game(committed.model, *committed.commitment, *committed.thresholds,
                       coordinator, options);
      const DisputeResult result = game.Run(claim.inputs, *claim.proposer_device,
                                            *claim.verifier_device, claim.perturbations);
      ref.claim_id = result.claim_id;
      ref.c0 = coordinator.claim(result.claim_id).c0;
      ref.flagged = result.challenge_raised;
      ref.proposer_guilty = result.proposer_guilty;
      ref.final_state = result.final_state;
      ref.gas_used = result.gas_used;
    } else {
      const Executor exec(graph, *claim.proposer_device);
      const ExecutionTrace trace = exec.RunPerturbed(claim.inputs, claim.perturbations);
      const DisputeOptions defaults;
      ResultMeta meta;
      meta.device = claim.proposer_device->name;
      meta.challenge_window = defaults.challenge_window;
      ref.c0 = ComputeResultCommitment(*committed.commitment, claim.inputs,
                                       trace.value(graph.output()), meta);
      const ClaimId id = coordinator.SubmitCommitment(ref.c0, defaults.challenge_window,
                                                      defaults.proposer_bond, shard);
      coordinator.AdvanceTimeFor(id, defaults.challenge_window);
      ref.claim_id = id;
      ref.final_state = coordinator.TryFinalize(id);
      ref.gas_used = coordinator.claim_gas(id);
    }
    outcomes.push_back(ref);
  }
  return outcomes;
}

// One remote submission's observed wire outcome, keyed by the server's ack ticket.
struct RemoteOutcome {
  uint64_t ticket = 0;
  size_t claim_index = 0;  // into the model's claim vector
  WireVerdict verdict;
};

// Asserts the wire outcomes (sorted into the server's accepted order by ticket)
// are bitwise identical to a fresh sequential replay of that order, ledger
// included.
void ExpectBitwiseEqualToReference(const CommittedModel& committed,
                                   const std::vector<BatchClaim>& claims,
                                   std::vector<RemoteOutcome> outcomes,
                                   const Coordinator& live, ModelId model_id,
                                   size_t shards, const std::string& label) {
  std::sort(outcomes.begin(), outcomes.end(),
            [](const RemoteOutcome& a, const RemoteOutcome& b) {
              return a.ticket < b.ticket;
            });
  // Tickets are the service's global sequence numbers: a fresh service admits a
  // dense 0..N-1, and THAT order is what the reference replays.
  std::vector<BatchClaim> accepted_order;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_EQ(outcomes[i].ticket, i) << label << ": accepted order is not dense";
    accepted_order.push_back(claims[outcomes[i].claim_index]);
  }
  Coordinator reference_coordinator(GasSchedule{}, /*round_timeout=*/10, shards,
                                    model_id);
  const std::vector<ReferenceOutcome> reference =
      RunSequentialReference(committed, accepted_order, reference_coordinator);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const WireVerdict& got = outcomes[i].verdict;
    const ReferenceOutcome& ref = reference[i];
    EXPECT_EQ(got.model_id, model_id) << label << ": ticket " << i;
    EXPECT_EQ(got.claim_id, ref.claim_id) << label << ": ticket " << i;
    EXPECT_EQ(got.c0, ref.c0) << label << ": ticket " << i << " C0 diverged";
    EXPECT_EQ(got.flagged, ref.flagged) << label << ": ticket " << i;
    EXPECT_EQ(got.proposer_guilty, ref.proposer_guilty) << label << ": ticket " << i;
    EXPECT_EQ(got.final_state, static_cast<uint32_t>(ref.final_state))
        << label << ": ticket " << i;
    EXPECT_EQ(got.gas_used, ref.gas_used) << label << ": ticket " << i;
  }
  const Balances got = live.balances();
  const Balances want = reference_coordinator.balances();
  EXPECT_EQ(got.proposer, want.proposer) << label;
  EXPECT_EQ(got.challenger, want.challenger) << label;
  EXPECT_EQ(got.treasury, want.treasury) << label;
  EXPECT_EQ(live.gas().total(), reference_coordinator.gas().total()) << label;
}

double CounterValue(const std::vector<NamedCounter>& counters, const std::string& name) {
  for (const NamedCounter& counter : counters) {
    if (counter.name == name) {
      return counter.value;
    }
  }
  return -1.0;
}

// ---------------------------------- framing ------------------------------------------

TEST(NetFrame, RoundTripsEveryMessageType) {
  const MessageType types[] = {MessageType::kHello,  MessageType::kHelloAck,
                               MessageType::kSubmit, MessageType::kSubmitAck,
                               MessageType::kVerdict, MessageType::kPing,
                               MessageType::kPong,   MessageType::kGoodbye};
  std::vector<uint8_t> stream;
  std::vector<std::vector<uint8_t>> payloads;
  for (size_t i = 0; i < std::size(types); ++i) {
    std::vector<uint8_t> payload(i * 7);
    for (size_t b = 0; b < payload.size(); ++b) {
      payload[b] = static_cast<uint8_t>(b * 31 + i);
    }
    payloads.push_back(payload);
    AppendWireFrame(stream, types[i], /*request_id=*/1000 + i, payload);
  }
  size_t offset = 0;
  for (size_t i = 0; i < std::size(types); ++i) {
    WireFrame frame;
    ASSERT_EQ(DecodeWireFrame(stream, offset, frame), WireDecodeStatus::kOk) << i;
    EXPECT_EQ(frame.type, types[i]);
    EXPECT_EQ(frame.request_id, 1000 + i);
    ASSERT_EQ(frame.payload.size(), payloads[i].size());
    EXPECT_TRUE(std::equal(frame.payload.begin(), frame.payload.end(),
                           payloads[i].begin()));
  }
  EXPECT_EQ(offset, stream.size());
  WireFrame frame;
  EXPECT_EQ(DecodeWireFrame(stream, offset, frame), WireDecodeStatus::kTorn);
}

TEST(NetFrame, EveryTornPrefixWaitsInsteadOfRejecting) {
  std::vector<uint8_t> stream;
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  AppendWireFrame(stream, MessageType::kSubmit, 7, payload);
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    const std::span<const uint8_t> prefix(stream.data(), cut);
    size_t offset = 0;
    WireFrame frame;
    EXPECT_EQ(DecodeWireFrame(prefix, offset, frame), WireDecodeStatus::kTorn)
        << "prefix length " << cut;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(NetFrame, CorruptionModesAreDistinctlyTyped) {
  const std::vector<uint8_t> payload = {9, 8, 7, 6};
  std::vector<uint8_t> good;
  AppendWireFrame(good, MessageType::kPing, 3, payload);

  const auto decode = [](std::vector<uint8_t> bytes) {
    size_t offset = 0;
    WireFrame frame;
    const WireDecodeStatus status = DecodeWireFrame(bytes, offset, frame);
    EXPECT_EQ(offset, status == WireDecodeStatus::kOk ? bytes.size() : 0u);
    return status;
  };

  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(decode(bad_magic), WireDecodeStatus::kBadMagic);

  std::vector<uint8_t> bad_version = good;
  bad_version[4] = 99;
  EXPECT_EQ(decode(bad_version), WireDecodeStatus::kBadVersion);

  std::vector<uint8_t> bad_type = good;
  bad_type[8] = 0;  // below kHello
  EXPECT_EQ(decode(bad_type), WireDecodeStatus::kBadType);
  bad_type[8] = 9;  // above kGoodbye
  EXPECT_EQ(decode(bad_type), WireDecodeStatus::kBadType);

  // Length check mismatch: the redundant xor'd copy disagrees.
  std::vector<uint8_t> bad_length = good;
  bad_length[24] ^= 0x01;  // length_check field
  EXPECT_EQ(decode(bad_length), WireDecodeStatus::kBadLength);

  // Consistent but absurd length: both copies claim more than the ceiling.
  std::vector<uint8_t> huge = good;
  const uint32_t huge_len = kMaxWirePayloadBytes + 1;
  const uint32_t huge_check = huge_len ^ kWireLengthXor;
  std::memcpy(huge.data() + 20, &huge_len, 4);
  std::memcpy(huge.data() + 24, &huge_check, 4);
  EXPECT_EQ(decode(huge), WireDecodeStatus::kBadLength);

  std::vector<uint8_t> bad_crc = good;
  bad_crc[kWireHeaderBytes] ^= 0x40;  // payload bit rot
  EXPECT_EQ(decode(bad_crc), WireDecodeStatus::kBadCrc);
}

// ----------------------------- canonical payload codecs ------------------------------

TEST(NetCodec, PayloadRoundTrips) {
  WireHello hello{0xABCDEF12345ULL};
  WireHello hello_out;
  ASSERT_TRUE(DecodeHello(EncodeHello(hello), hello_out));
  EXPECT_EQ(hello_out.session_id, hello.session_id);

  WireHelloAck ack;
  ack.dedup_window = 512;
  ack.models = {{1, "bert-mini"}, {7, "qwen-mini"}};
  WireHelloAck ack_out;
  ASSERT_TRUE(DecodeHelloAck(EncodeHelloAck(ack), ack_out));
  EXPECT_EQ(ack_out.dedup_window, 512u);
  ASSERT_EQ(ack_out.models.size(), 2u);
  EXPECT_EQ(ack_out.models[1].id, 7u);
  EXPECT_EQ(ack_out.models[1].name, "qwen-mini");

  for (uint32_t s = 0; s < static_cast<uint32_t>(WireStatus::kCount); ++s) {
    WireSubmitAck submit_ack;
    submit_ack.status = static_cast<WireStatus>(s);
    submit_ack.ticket = submit_ack.status == WireStatus::kAccepted ? 42 : 0;
    WireSubmitAck out;
    ASSERT_TRUE(DecodeSubmitAck(EncodeSubmitAck(submit_ack), out)) << s;
    EXPECT_EQ(out.status, submit_ack.status);
    EXPECT_EQ(out.ticket, submit_ack.ticket);
  }

  WireVerdict verdict;
  verdict.ticket = 5;
  verdict.claim_id = 17;
  verdict.model_id = 3;
  verdict.c0[0] = 0xAA;
  verdict.c0[31] = 0x55;
  verdict.final_state = 2;
  verdict.supervised = true;
  verdict.flagged = true;
  verdict.proposer_guilty = false;
  verdict.gas_used = 123456;
  WireVerdict verdict_out;
  ASSERT_TRUE(DecodeVerdict(EncodeVerdict(verdict), verdict_out));
  EXPECT_EQ(verdict_out.claim_id, 17u);
  EXPECT_EQ(verdict_out.c0, verdict.c0);
  EXPECT_TRUE(verdict_out.supervised);
  EXPECT_TRUE(verdict_out.flagged);
  EXPECT_FALSE(verdict_out.proposer_guilty);
  EXPECT_EQ(verdict_out.gas_used, 123456);
}

TEST(NetCodec, SubmitRoundTripsARealClaim) {
  const Model model = BuildNetModel(0);
  const std::vector<BatchClaim> claims =
      MakeTestClaims(model, 4, 0xfeed, /*cheat_rate=*/0.5, /*supervised_rate=*/0.5);
  for (const BatchClaim& claim : claims) {
    WireSubmit submit;
    submit.model_id = 11;
    submit.submitter = 22;
    submit.claim = WireClaimFromBatchClaim(claim);
    const std::vector<uint8_t> bytes = EncodeSubmit(submit);
    WireSubmit out;
    ASSERT_TRUE(DecodeSubmit(bytes, out));
    EXPECT_EQ(out.model_id, 11u);
    EXPECT_EQ(out.submitter, 22u);
    // Canonical: the decoded value re-encodes to the same bytes.
    EXPECT_EQ(EncodeSubmit(out), bytes);
    // And bridges back to an equivalent BatchClaim (same devices, same tensors).
    BatchClaim bridged;
    ASSERT_TRUE(BatchClaimFromWireClaim(out.claim, bridged));
    EXPECT_EQ(bridged.proposer_device, claim.proposer_device);
    EXPECT_EQ(bridged.verifier_device, claim.verifier_device);
    ASSERT_EQ(bridged.inputs.size(), claim.inputs.size());
    ASSERT_EQ(bridged.perturbations.size(), claim.perturbations.size());
  }
}

TEST(NetCodec, NonCanonicalEncodingsAreRefused) {
  // A reject ack carrying a ticket is not a value EncodeSubmitAck can produce;
  // the decoder must refuse it rather than silently normalize.
  std::vector<uint8_t> reject_with_ticket = EncodeSubmitAck({WireStatus::kOverloaded, 0});
  ASSERT_GE(reject_with_ticket.size(), 12u);
  reject_with_ticket[4] = 1;  // ticket low byte
  WireSubmitAck ack_out;
  EXPECT_FALSE(DecodeSubmitAck(reject_with_ticket, ack_out));

  // A status at/above kCount is meaningless.
  std::vector<uint8_t> bad_status = EncodeSubmitAck({WireStatus::kAccepted, 1});
  bad_status[0] = static_cast<uint8_t>(WireStatus::kCount);
  EXPECT_FALSE(DecodeSubmitAck(bad_status, ack_out));

  // Verdict claim states are validated against the enum's cardinality, and the
  // three flag bits are the only ones allowed.
  WireVerdict verdict;
  verdict.final_state = 1;
  std::vector<uint8_t> bad_state = EncodeVerdict(verdict);
  WireVerdict verdict_out;
  ASSERT_TRUE(DecodeVerdict(bad_state, verdict_out));
  bad_state[8 + 8 + 8 + 32] = 5;  // final_state byte: ClaimState has 5 states
  EXPECT_FALSE(DecodeVerdict(bad_state, verdict_out));
  std::vector<uint8_t> bad_flags = EncodeVerdict(verdict);
  bad_flags[8 + 8 + 8 + 32 + 4] = 0x08;  // a flag bit beyond the defined three
  EXPECT_FALSE(DecodeVerdict(bad_flags, verdict_out));

  // Trailing bytes are never canonical.
  std::vector<uint8_t> trailing = EncodeHello({123});
  trailing.push_back(0);
  WireHello hello_out;
  EXPECT_FALSE(DecodeHello(trailing, hello_out));

  // A zero session id cannot attach (it would alias "no session").
  EXPECT_FALSE(DecodeHello(EncodeHello({1}), hello_out) &&
               DecodeHello(std::vector<uint8_t>(8, 0), hello_out));
}

TEST(NetCodec, StatusMappingMirrorsGatewayExactly) {
  EXPECT_EQ(ToWireStatus(GatewayStatus::kAccepted), WireStatus::kAccepted);
  EXPECT_EQ(ToWireStatus(GatewayStatus::kUnknownModel), WireStatus::kUnknownModel);
  EXPECT_EQ(ToWireStatus(GatewayStatus::kNotCommitted), WireStatus::kNotCommitted);
  EXPECT_EQ(ToWireStatus(GatewayStatus::kNotServing), WireStatus::kNotServing);
  EXPECT_EQ(ToWireStatus(GatewayStatus::kDraining), WireStatus::kDraining);
  EXPECT_EQ(ToWireStatus(GatewayStatus::kRetired), WireStatus::kRetired);
  EXPECT_EQ(ToWireStatus(GatewayStatus::kOverloaded), WireStatus::kOverloaded);
  EXPECT_TRUE(IsRetriableStatus(WireStatus::kOverloaded));
  EXPECT_TRUE(IsRetriableStatus(WireStatus::kDraining));
  EXPECT_FALSE(IsRetriableStatus(WireStatus::kAccepted));
  EXPECT_FALSE(IsRetriableStatus(WireStatus::kRetired));
  EXPECT_FALSE(IsRetriableStatus(WireStatus::kMalformed));
}

// ------------------------------------ fuzz -------------------------------------------

// Every decoder, against (a) bit/byte mutations of valid encodings, (b) every
// truncation, (c) extensions, and (d) random soup. The invariant under test: the
// decoder never crashes or reads out of bounds, and whenever it ACCEPTS a buffer,
// re-encoding the decoded value reproduces the buffer bit-for-bit — two distinct
// byte strings can never alias one value.
class NetCodecFuzz : public ::testing::TestWithParam<uint64_t> {};

template <typename T>
void CheckCanonicalProperty(bool (*decode)(std::span<const uint8_t>, T&),
                            std::vector<uint8_t> (*encode)(const T&),
                            std::span<const uint8_t> bytes) {
  T value;
  if (decode(bytes, value)) {
    const std::vector<uint8_t> reencoded = encode(value);
    ASSERT_EQ(reencoded.size(), bytes.size()) << "accepted payload re-encoded differently";
    ASSERT_TRUE(std::equal(reencoded.begin(), reencoded.end(), bytes.begin()))
        << "accepted payload re-encoded differently";
  }
}

void CheckAllDecoders(std::span<const uint8_t> bytes) {
  CheckCanonicalProperty<WireHello>(DecodeHello, EncodeHello, bytes);
  CheckCanonicalProperty<WireHelloAck>(DecodeHelloAck, EncodeHelloAck, bytes);
  CheckCanonicalProperty<WireSubmit>(DecodeSubmit, EncodeSubmit, bytes);
  CheckCanonicalProperty<WireSubmitAck>(DecodeSubmitAck, EncodeSubmitAck, bytes);
  CheckCanonicalProperty<WireVerdict>(DecodeVerdict, EncodeVerdict, bytes);
  // The frame decoder is total too; mutated headers must land on a typed status.
  size_t offset = 0;
  WireFrame frame;
  (void)DecodeWireFrame(bytes, offset, frame);
}

TEST_P(NetCodecFuzz, MutationsNeverCrashAndNeverAlias) {
  Rng rng(GetParam());

  // Corpus: one valid encoding per payload type, tensors included.
  std::vector<std::vector<uint8_t>> corpus;
  corpus.push_back(EncodeHello({0x1122334455ULL}));
  WireHelloAck hello_ack;
  hello_ack.dedup_window = 64;
  hello_ack.models = {{1, "alpha"}, {2, "beta"}, {900, "gamma"}};
  corpus.push_back(EncodeHelloAck(hello_ack));
  corpus.push_back(EncodeSubmitAck({WireStatus::kAccepted, 99}));
  corpus.push_back(EncodeSubmitAck({WireStatus::kDraining, 0}));
  WireVerdict verdict;
  verdict.ticket = 12;
  verdict.claim_id = 13;
  verdict.model_id = 2;
  verdict.final_state = 1;
  verdict.supervised = true;
  verdict.gas_used = 777;
  corpus.push_back(EncodeVerdict(verdict));
  WireSubmit submit;
  submit.model_id = 5;
  submit.submitter = 6;
  Rng tensor_rng(GetParam() ^ 0x7e5707);
  submit.claim.inputs.push_back(Tensor::Randn(Shape({3, 4}), tensor_rng, 1.0f));
  submit.claim.inputs.push_back(Tensor::Randn(Shape({2, 2, 2}), tensor_rng, 0.5f));
  submit.claim.perturbations.push_back({7, Tensor::Randn(Shape({4}), tensor_rng, 0.1f)});
  submit.claim.proposer_device = "fuzz-proposer";
  submit.claim.verifier_device = "fuzz-verifier";
  corpus.push_back(EncodeSubmit(submit));
  // Framed messages join the corpus so DecodeWireFrame sees mutated headers.
  std::vector<uint8_t> framed;
  AppendWireFrame(framed, MessageType::kSubmit, 31337, corpus.back());
  corpus.push_back(framed);

  for (const std::vector<uint8_t>& seed_bytes : corpus) {
    // Valid encodings round-trip (sanity that the corpus is live).
    CheckAllDecoders(seed_bytes);

    // Byte / bit mutations.
    for (int round = 0; round < 200; ++round) {
      std::vector<uint8_t> mutated = seed_bytes;
      if (mutated.empty()) {
        break;
      }
      const size_t flips = 1 + rng.NextBounded(3);
      for (size_t f = 0; f < flips; ++f) {
        const size_t index = rng.NextBounded(mutated.size());
        mutated[index] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
      }
      CheckAllDecoders(mutated);
    }

    // Every truncation (a valid proper prefix must still be canonical for its
    // own length or be refused — never misparsed).
    for (size_t cut = 0; cut < seed_bytes.size(); ++cut) {
      CheckAllDecoders(std::span<const uint8_t>(seed_bytes.data(), cut));
    }

    // Extensions with junk.
    for (int round = 0; round < 20; ++round) {
      std::vector<uint8_t> extended = seed_bytes;
      const size_t extra = 1 + rng.NextBounded(16);
      for (size_t b = 0; b < extra; ++b) {
        extended.push_back(static_cast<uint8_t>(rng.NextU64()));
      }
      CheckAllDecoders(extended);
    }
  }

  // Random soup.
  for (int round = 0; round < 200; ++round) {
    std::vector<uint8_t> soup(rng.NextBounded(300));
    for (uint8_t& byte : soup) {
      byte = static_cast<uint8_t>(rng.NextU64());
    }
    CheckAllDecoders(soup);
  }
}

INSTANTIATE_TEST_SUITE_P(DurabilitySeeds, NetCodecFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------- loopback end-to-end ---------------------------------

TEST_F(NetFixture, MultiClientSweepIsBitwisePerModel) {
  constexpr size_t kNumModels = 3;
  constexpr size_t kClientsPerModel = 2;
  constexpr size_t kClaimsPerClient = 4;
  constexpr size_t kShards = 2;
  constexpr size_t kClaimsPerModel = kClientsPerModel * kClaimsPerClient;

  std::vector<std::vector<BatchClaim>> claims(kNumModels);
  for (size_t m = 0; m < kNumModels; ++m) {
    claims[m] = MakeTestClaims((*models_)[m].model, kClaimsPerModel, 0x9e7 + m,
                               /*cheat_rate=*/0.4, /*supervised_rate=*/0.6);
  }

  ModelRegistry registry;
  GatewayOptions gateway_options;
  gateway_options.rpc.enabled = true;
  ServingGateway gateway(registry, gateway_options);
  const std::vector<ModelId> ids = CommitModels(registry, kNumModels, kShards);
  for (size_t m = 0; m < kNumModels; ++m) {
    ServiceOptions options;
    options.num_workers = 2;
    options.batching.initial_hint = 2;
    options.verifier.reuse_buffers = true;
    gateway.Serve(ids[m], options);
  }
  ASSERT_NE(gateway.rpc(), nullptr);
  const int port = gateway.rpc()->port();

  // kNumModels x kClientsPerModel client threads, each on its OWN connection and
  // session: submissions pipeline (all submits, then all verdict waits) so the
  // server sees genuinely interleaved in-flight traffic across connections.
  std::vector<std::vector<RemoteOutcome>> outcomes(kNumModels);
  std::vector<std::mutex> outcome_mus(kNumModels);
  std::vector<std::thread> clients;
  for (size_t m = 0; m < kNumModels; ++m) {
    for (size_t c = 0; c < kClientsPerModel; ++c) {
      clients.emplace_back([&, m, c] {
        RetriableChannel channel("127.0.0.1", port,
                                 /*session_id=*/0xC11E0000 + m * 16 + c);
        struct InFlight {
          uint64_t request_id = 0;
          uint64_t ticket = 0;
          size_t claim_index = 0;
        };
        std::vector<InFlight> in_flight;
        for (size_t i = 0; i < kClaimsPerClient; ++i) {
          const size_t claim_index = c * kClaimsPerClient + i;
          uint64_t request_id = 0;
          const WireSubmitAck ack =
              channel.Submit(ids[m], /*submitter=*/m * 16 + c,
                             claims[m][claim_index], &request_id);
          ASSERT_EQ(ack.status, WireStatus::kAccepted)
              << "model " << m << " client " << c << " claim " << i;
          in_flight.push_back({request_id, ack.ticket, claim_index});
        }
        for (const InFlight& flight : in_flight) {
          WireVerdict verdict;
          ASSERT_TRUE(channel.WaitVerdict(flight.request_id, verdict));
          EXPECT_EQ(verdict.ticket, flight.ticket);
          std::lock_guard<std::mutex> lock(outcome_mus[m]);
          outcomes[m].push_back({flight.ticket, flight.claim_index, verdict});
        }
      });
    }
  }
  for (std::thread& t : clients) {
    t.join();
  }
  gateway.DrainAll();

  for (size_t m = 0; m < kNumModels; ++m) {
    ASSERT_EQ(outcomes[m].size(), kClaimsPerModel) << "model " << m;
    ExpectBitwiseEqualToReference((*models_)[m], claims[m], outcomes[m],
                                  registry.coordinator(ids[m]), ids[m], kShards,
                                  "model " + std::to_string(m));
  }

  // The net counters joined the flow: every submit and verdict crossed the wire.
  const std::vector<NamedCounter> counters = gateway.rpc()->Counters();
  EXPECT_EQ(CounterValue(counters, "net/rpc/submits_accepted"),
            static_cast<double>(kNumModels * kClaimsPerModel));
  EXPECT_EQ(CounterValue(counters, "net/rpc/verdicts_pushed"),
            static_cast<double>(kNumModels * kClaimsPerModel));
  EXPECT_EQ(CounterValue(counters, "net/rpc/protocol_errors"), 0.0);
}

TEST_F(NetFixture, LifecycleRejectsCrossTheWireWithDistinctCodes) {
  const CommittedModel& committed = (*models_)[0];
  const std::vector<BatchClaim> claims =
      MakeTestClaims(committed.model, 2, 0x11f3, 0.0, 0.0);

  ModelRegistry registry;
  GatewayOptions gateway_options;
  gateway_options.rpc.enabled = true;
  ServingGateway gateway(registry, gateway_options);
  const ModelId registered = registry.Register(committed.model);
  const int port = gateway.rpc()->port();

  ClientChannel channel("127.0.0.1", port, /*session_id=*/0xBEE1);
  ASSERT_TRUE(channel.ok());
  // Nothing serves yet, so the HelloAck's model list is empty.
  EXPECT_TRUE(channel.hello_ack().models.empty());

  uint64_t next_request = 1;
  const auto submit_status = [&](uint64_t model_id, const BatchClaim& claim) {
    WireSubmit submit;
    submit.model_id = model_id;
    submit.claim = WireClaimFromBatchClaim(claim);
    const uint64_t request_id = next_request++;
    EXPECT_TRUE(channel.SendSubmit(request_id, EncodeSubmit(submit)));
    WireSubmitAck ack;
    EXPECT_TRUE(channel.WaitAck(request_id, ack, std::chrono::milliseconds(5000)));
    EXPECT_EQ(ack.ticket, 0u);
    return ack.status;
  };

  EXPECT_EQ(submit_status(registered + 41, claims[0]), WireStatus::kUnknownModel);
  EXPECT_EQ(submit_status(registered, claims[0]), WireStatus::kNotCommitted);
  registry.Commit(registered, *committed.commitment, *committed.thresholds);
  EXPECT_EQ(submit_status(registered, claims[0]), WireStatus::kNotServing);

  gateway.Serve(registered);
  // A fresh attach now lists the served model by name.
  ClientChannel serving_channel("127.0.0.1", port, /*session_id=*/0xBEE2);
  ASSERT_TRUE(serving_channel.ok());
  ASSERT_EQ(serving_channel.hello_ack().models.size(), 1u);
  EXPECT_EQ(serving_channel.hello_ack().models[0].id, registered);
  EXPECT_EQ(serving_channel.hello_ack().models[0].name, committed.model.name);

  // A claim naming a device outside the fleet is a wire-layer reject: it never
  // reaches the gateway.
  WireSubmit alien;
  alien.model_id = registered;
  alien.claim = WireClaimFromBatchClaim(claims[0]);
  alien.claim.proposer_device = "no-such-device";
  EXPECT_TRUE(channel.SendSubmit(next_request, EncodeSubmit(alien)));
  WireSubmitAck alien_ack;
  ASSERT_TRUE(channel.WaitAck(next_request++, alien_ack, std::chrono::milliseconds(5000)));
  EXPECT_EQ(alien_ack.status, WireStatus::kUnknownDevice);

  // A Submit frame whose payload fails the canonical decode is kMalformed.
  const std::vector<uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  EXPECT_TRUE(channel.SendSubmit(next_request, garbage));
  WireSubmitAck malformed_ack;
  ASSERT_TRUE(channel.WaitAck(next_request++, malformed_ack,
                              std::chrono::milliseconds(5000)));
  EXPECT_EQ(malformed_ack.status, WireStatus::kMalformed);

  gateway.Drain(registered);
  EXPECT_EQ(submit_status(registered, claims[1]), WireStatus::kDraining);
  gateway.Retire(registered);
  EXPECT_EQ(submit_status(registered, claims[1]), WireStatus::kRetired);
}

TEST_F(NetFixture, OverloadSurfacesAsRetriableBackpressure) {
  const CommittedModel& committed = (*models_)[0];
  constexpr size_t kBurst = 24;
  const std::vector<BatchClaim> claims =
      MakeTestClaims(committed.model, kBurst, 0x0bad, 0.0, 0.0);

  ModelRegistry registry;
  GatewayOptions gateway_options;
  gateway_options.rpc.enabled = true;
  ServingGateway gateway(registry, gateway_options);
  const std::vector<ModelId> ids = CommitModels(registry, 1, /*shards=*/1);
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.admission = AdmissionPolicy::kReject;  // shed instead of block
  gateway.Serve(ids[0], options);

  ClientChannel channel("127.0.0.1", gateway.rpc()->port(), /*session_id=*/0xB0B0);
  ASSERT_TRUE(channel.ok());
  // Fire the burst without waiting: the 1-deep service queue cannot hold it, so
  // the surplus must come back as typed kOverloaded — backpressure, not a stall
  // and not a disconnect.
  for (size_t i = 0; i < kBurst; ++i) {
    WireSubmit submit;
    submit.model_id = ids[0];
    submit.claim = WireClaimFromBatchClaim(claims[i]);
    ASSERT_TRUE(channel.SendSubmit(100 + i, EncodeSubmit(submit)));
  }
  size_t accepted = 0;
  size_t overloaded = 0;
  for (size_t i = 0; i < kBurst; ++i) {
    WireSubmitAck ack;
    ASSERT_TRUE(channel.WaitAck(100 + i, ack, std::chrono::milliseconds(30000))) << i;
    if (ack.status == WireStatus::kAccepted) {
      ++accepted;
    } else {
      ASSERT_EQ(ack.status, WireStatus::kOverloaded) << i;
      EXPECT_TRUE(IsRetriableStatus(ack.status));
      ++overloaded;
    }
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(overloaded, 0u);
  EXPECT_EQ(accepted + overloaded, kBurst);
  gateway.DrainAll();
}

TEST_F(NetFixture, KilledConnectionsRetryExactlyOnce) {
  const CommittedModel& committed = (*models_)[0];
  constexpr size_t kClaims = 9;
  const std::vector<BatchClaim> claims =
      MakeTestClaims(committed.model, kClaims, 0xdead5, /*cheat_rate=*/0.3,
                     /*supervised_rate=*/0.5);

  ModelRegistry registry;
  GatewayOptions gateway_options;
  gateway_options.rpc.enabled = true;
  ServingGateway gateway(registry, gateway_options);
  const std::vector<ModelId> ids = CommitModels(registry, 1, /*shards=*/2);
  ServiceOptions options;
  options.num_workers = 2;
  gateway.Serve(ids[0], options);

  std::vector<RemoteOutcome> outcomes;
  {
    RetriableChannel channel("127.0.0.1", gateway.rpc()->port(),
                             /*session_id=*/0xFA57);
    for (size_t i = 0; i < kClaims; ++i) {
      uint64_t request_id = 0;
      const WireSubmitAck ack =
          channel.Submit(ids[0], /*submitter=*/7, claims[i], &request_id);
      ASSERT_EQ(ack.status, WireStatus::kAccepted) << "claim " << i;
      // Kill the connection AFTER the ack, BEFORE the verdict: the retry layer
      // must reconnect, resubmit the un-verdicted request, and be answered from
      // the server's dedup cache — never admitted twice.
      if (i % 3 == 1) {
        channel.InjectFaultForTest();
      }
      WireVerdict verdict;
      ASSERT_TRUE(channel.WaitVerdict(request_id, verdict)) << "claim " << i;
      outcomes.push_back({ack.ticket, i, verdict});
    }
    EXPECT_GT(channel.reconnects(), 0);
    EXPECT_GT(channel.resubmissions(), 0);
  }
  gateway.DrainAll();

  // Exactly-once: every claim admitted once (dense tickets, distinct claim ids),
  // and outcomes + ledger bitwise-match the sequential replay of that order —
  // the crash/retry pattern left no trace in the model's history.
  std::set<uint64_t> claim_ids;
  for (const RemoteOutcome& outcome : outcomes) {
    claim_ids.insert(outcome.verdict.claim_id);
  }
  EXPECT_EQ(claim_ids.size(), kClaims);
  ExpectBitwiseEqualToReference(committed, claims, outcomes,
                                registry.coordinator(ids[0]), ids[0], /*shards=*/2,
                                "retry");

  const std::vector<NamedCounter> counters = gateway.rpc()->Counters();
  EXPECT_GT(CounterValue(counters, "net/rpc/dedup_hits"), 0.0);
  EXPECT_EQ(CounterValue(counters, "net/rpc/submits_accepted"),
            static_cast<double>(kClaims));
}

}  // namespace
}  // namespace tao
