// Gradient checks: every differentiable operator's Vjp is validated against central
// finite differences of a random linear functional of its output, and whole-graph
// backprop is validated end-to-end. These gradients drive the PGD attacks of Sec. 4.

#include <cmath>

#include <gtest/gtest.h>

#include "src/attack/autograd.h"
#include "src/graph/executor.h"
#include "src/ops/op_kernel.h"
#include "src/util/rng.h"

namespace tao {
namespace {

// L(inputs) = <w, op(inputs)> for a fixed random w; compares analytic dL/dinput to
// central differences. Uses FP64 tolerance scaled to FP32 finite-difference noise.
void CheckVjp(const std::string& op, std::vector<Tensor> inputs, const Attrs& attrs,
              const std::vector<bool>& check_input, uint64_t seed, double tol = 2e-2) {
  RegisterAllOps();
  const OpKernel& kernel = OpRegistry::Instance().Get(op);
  const DeviceProfile& ref = DeviceRegistry::Reference();
  const Tensor out = kernel.Forward({ref, inputs, attrs});
  Rng rng(seed);
  const Tensor w = Tensor::Randn(out.shape(), rng);

  const VjpContext ctx{inputs, out, w, attrs};
  const std::vector<Tensor> grads = kernel.Vjp(ctx);
  ASSERT_EQ(grads.size(), inputs.size()) << op;

  auto loss = [&](const std::vector<Tensor>& probe) -> double {
    const Tensor y = kernel.Forward({ref, probe, attrs});
    double acc = 0.0;
    const auto yv = y.values();
    const auto wv = w.values();
    for (size_t i = 0; i < yv.size(); ++i) {
      acc += static_cast<double>(yv[i]) * static_cast<double>(wv[i]);
    }
    return acc;
  };

  const float eps = 1e-3f;
  for (size_t arg = 0; arg < inputs.size(); ++arg) {
    if (!check_input[arg]) {
      continue;
    }
    ASSERT_EQ(grads[arg].shape(), inputs[arg].shape()) << op << " arg " << arg;
    // Probe a subset of elements to keep runtime bounded.
    const int64_t n = inputs[arg].numel();
    const int64_t step = std::max<int64_t>(1, n / 16);
    for (int64_t i = 0; i < n; i += step) {
      std::vector<Tensor> probe;
      for (const Tensor& t : inputs) {
        probe.push_back(t.Clone());
      }
      const float original = probe[arg][i];
      probe[arg].mutable_values()[static_cast<size_t>(i)] = original + eps;
      const double up = loss(probe);
      probe[arg].mutable_values()[static_cast<size_t>(i)] = original - eps;
      const double down = loss(probe);
      const double fd = (up - down) / (2.0 * eps);
      const double analytic = grads[arg][i];
      EXPECT_NEAR(analytic, fd, tol * (1.0 + std::abs(fd)))
          << op << " arg " << arg << " elem " << i;
    }
  }
}

Tensor Rand(Shape shape, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), rng, scale);
}

TEST(VjpTest, Add) {
  CheckVjp("add", {Rand(Shape{4, 5}, 1), Rand(Shape{5}, 2)}, {}, {true, true}, 100);
}

TEST(VjpTest, Sub) {
  CheckVjp("sub", {Rand(Shape{4, 5}, 3), Rand(Shape{4, 5}, 4)}, {}, {true, true}, 101);
}

TEST(VjpTest, Mul) {
  CheckVjp("mul", {Rand(Shape{4, 5}, 5), Rand(Shape{5}, 6)}, {}, {true, true}, 102);
}

TEST(VjpTest, Div) {
  Rng rng(7);
  const Tensor denom = Tensor::Uniform(Shape{4, 5}, rng, 0.5f, 2.0f);
  CheckVjp("div", {Rand(Shape{4, 5}, 8), denom}, {}, {true, true}, 103);
}

TEST(VjpTest, UnaryFamily) {
  CheckVjp("neg", {Rand(Shape{12}, 9)}, {}, {true}, 104);
  CheckVjp("exp", {Rand(Shape{12}, 10, 0.5f)}, {}, {true}, 105);
  CheckVjp("tanh", {Rand(Shape{12}, 11)}, {}, {true}, 106);
  CheckVjp("sin", {Rand(Shape{12}, 12)}, {}, {true}, 107);
  CheckVjp("cos", {Rand(Shape{12}, 13)}, {}, {true}, 108);
  Rng rng(14);
  const Tensor pos = Tensor::Uniform(Shape{12}, rng, 0.5f, 3.0f);
  CheckVjp("log", {pos}, {}, {true}, 109);
  CheckVjp("sqrt", {pos}, {}, {true}, 110);
  CheckVjp("rsqrt", {pos}, {}, {true}, 111);
}

TEST(VjpTest, Activations) {
  // Avoid finite-difference kinks: keep ReLU probes away from 0 via larger magnitudes.
  CheckVjp("relu", {Rand(Shape{32}, 15, 2.0f)}, {}, {true}, 112);
  CheckVjp("gelu", {Rand(Shape{32}, 16)}, {}, {true}, 113);
  CheckVjp("silu", {Rand(Shape{32}, 17)}, {}, {true}, 114);
}

TEST(VjpTest, Softmax) {
  Attrs attrs;
  attrs.Set("axis", static_cast<int64_t>(-1));
  CheckVjp("softmax", {Rand(Shape{3, 8}, 18)}, attrs, {true}, 115);
}

TEST(VjpTest, MatmulBmmLinear) {
  CheckVjp("matmul", {Rand(Shape{4, 6}, 19), Rand(Shape{6, 3}, 20)}, {}, {true, true}, 116);
  CheckVjp("bmm", {Rand(Shape{2, 3, 4}, 21), Rand(Shape{2, 4, 3}, 22)}, {}, {true, true},
           117);
  CheckVjp("linear", {Rand(Shape{3, 6}, 23), Rand(Shape{4, 6}, 24), Rand(Shape{4}, 25)}, {},
           {true, true, true}, 118);
}

TEST(VjpTest, Normalizations) {
  Attrs ln;
  ln.Set("eps", 1e-5);
  CheckVjp("layer_norm", {Rand(Shape{3, 16}, 26), Rand(Shape{16}, 27), Rand(Shape{16}, 28)},
           ln, {true, true, true}, 119);
  Attrs rn;
  rn.Set("eps", 1e-6);
  CheckVjp("rms_norm", {Rand(Shape{3, 16}, 29), Rand(Shape{16}, 30)}, rn, {true, true}, 120);
  Attrs gn;
  gn.Set("groups", static_cast<int64_t>(2));
  gn.Set("eps", 1e-5);
  CheckVjp("group_norm",
           {Rand(Shape{2, 4, 3, 3}, 31), Rand(Shape{4}, 32), Rand(Shape{4}, 33)}, gn,
           {true, true, true}, 121);
}

TEST(VjpTest, BatchNormInputGrad) {
  Rng rng(34);
  const Tensor var = Tensor::Uniform(Shape{3}, rng, 0.5f, 2.0f);
  Attrs attrs;
  attrs.Set("eps", 1e-5);
  CheckVjp("batch_norm",
           {Rand(Shape{2, 3, 4, 4}, 35), Rand(Shape{3}, 36), Rand(Shape{3}, 37),
            Rand(Shape{3}, 38), var},
           attrs, {true, false, false, false, false}, 122);
}

TEST(VjpTest, Conv2d) {
  Attrs attrs;
  attrs.Set("stride", static_cast<int64_t>(1));
  attrs.Set("padding", static_cast<int64_t>(1));
  CheckVjp("conv2d",
           {Rand(Shape{1, 2, 5, 5}, 39), Rand(Shape{3, 2, 3, 3}, 40), Rand(Shape{3}, 41)},
           attrs, {true, true, true}, 123);
}

TEST(VjpTest, PoolingAndResampling) {
  Attrs mp;
  mp.Set("kernel", static_cast<int64_t>(2));
  mp.Set("stride", static_cast<int64_t>(2));
  CheckVjp("max_pool2d", {Rand(Shape{1, 2, 4, 4}, 42)}, mp, {true}, 124);
  CheckVjp("avg_pool2d", {Rand(Shape{1, 2, 4, 4}, 43)}, mp, {true}, 125);
  Attrs ap;
  ap.Set("out_h", static_cast<int64_t>(2));
  ap.Set("out_w", static_cast<int64_t>(2));
  CheckVjp("adaptive_avg_pool2d", {Rand(Shape{1, 2, 5, 5}, 44)}, ap, {true}, 126);
  Attrs it;
  it.Set("scale", static_cast<int64_t>(2));
  CheckVjp("interpolate", {Rand(Shape{1, 2, 3, 3}, 45)}, it, {true}, 127);
}

TEST(VjpTest, Reductions) {
  Attrs attrs;
  attrs.Set("axis", static_cast<int64_t>(-1));
  CheckVjp("sum", {Rand(Shape{3, 8}, 46)}, attrs, {true}, 128);
  CheckVjp("mean", {Rand(Shape{3, 8}, 47)}, attrs, {true}, 129);
  CheckVjp("reduce_max", {Rand(Shape{3, 8}, 48)}, attrs, {true}, 130);
}

TEST(VjpTest, Structural) {
  Attrs rs;
  rs.Set("shape", std::vector<int64_t>{2, 6});
  CheckVjp("reshape", {Rand(Shape{3, 4}, 49)}, rs, {true}, 131);
  Attrs tp;
  tp.Set("perm", std::vector<int64_t>{1, 0});
  CheckVjp("transpose", {Rand(Shape{3, 4}, 50)}, tp, {true}, 132);
  Attrs ct;
  ct.Set("axis", static_cast<int64_t>(0));
  CheckVjp("concat", {Rand(Shape{2, 3}, 51), Rand(Shape{2, 3}, 52)}, ct, {true, true}, 133);
  Attrs sl;
  sl.Set("axis", static_cast<int64_t>(1));
  sl.Set("start", static_cast<int64_t>(1));
  sl.Set("end", static_cast<int64_t>(3));
  CheckVjp("slice", {Rand(Shape{2, 4}, 53)}, sl, {true}, 134);
}

TEST(VjpTest, EmbeddingTableGrad) {
  Tensor ids = Tensor::Zeros(Shape{4});
  ids.mutable_values()[0] = 2.0f;
  ids.mutable_values()[1] = 0.0f;
  ids.mutable_values()[2] = 2.0f;  // repeated index: gradients must accumulate
  ids.mutable_values()[3] = 5.0f;
  CheckVjp("embedding", {Rand(Shape{6, 3}, 54), ids}, {}, {true, false}, 135);
}

TEST(VjpTest, MaskedFill) {
  Tensor mask = Tensor::Zeros(Shape{8});
  mask.mutable_values()[1] = 1.0f;
  mask.mutable_values()[6] = 1.0f;
  Attrs attrs;
  attrs.Set("value", -100.0);
  CheckVjp("masked_fill", {Rand(Shape{8}, 55), mask}, attrs, {true, false}, 136);
}

// ----------------------------- whole-graph backprop --------------------------------

TEST(AutogradTest, GraphBackpropMatchesFiniteDifference) {
  RegisterAllOps();
  Rng rng(60);
  Graph g;
  const NodeId x = g.AddInput("x", Shape{2, 6});
  const NodeId w1 = g.AddParam("w1", Tensor::Randn(Shape{8, 6}, rng, 0.4f));
  const NodeId b1 = g.AddParam("b1", Tensor::Randn(Shape{8}, rng, 0.1f));
  const NodeId w2 = g.AddParam("w2", Tensor::Randn(Shape{3, 8}, rng, 0.4f));
  const NodeId b2 = g.AddParam("b2", Tensor::Randn(Shape{3}, rng, 0.1f));
  const NodeId h = g.AddOp("linear", "fc1", {x, w1, b1});
  const NodeId a = g.AddOp("gelu", "act", {h});
  g.AddOp("linear", "fc2", {a, w2, b2});

  Rng in_rng(61);
  const Tensor input = Tensor::Randn(Shape{2, 6}, in_rng);
  const Executor exec(g, DeviceRegistry::Reference());
  const ExecutionTrace trace = exec.Run({input});

  Rng w_rng(62);
  const Tensor seed = Tensor::Randn(g.node(g.output()).shape, w_rng);
  const auto grads = BackpropFromOutput(g, trace, seed);

  auto loss = [&](const Tensor& probe) -> double {
    const ExecutionTrace t = exec.Run({probe});
    const auto yv = t.value(g.output()).values();
    const auto sv = seed.values();
    double acc = 0.0;
    for (size_t i = 0; i < yv.size(); ++i) {
      acc += static_cast<double>(yv[i]) * static_cast<double>(sv[i]);
    }
    return acc;
  };

  const float eps = 1e-3f;
  for (int64_t i = 0; i < input.numel(); i += 3) {
    Tensor probe = input.Clone();
    probe.mutable_values()[static_cast<size_t>(i)] += eps;
    const double up = loss(probe);
    probe.mutable_values()[static_cast<size_t>(i)] -= 2 * eps;
    const double down = loss(probe);
    const double fd = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grads[static_cast<size_t>(x)][i], fd, 2e-2 * (1.0 + std::abs(fd)));
  }
}

TEST(AutogradTest, GradientZeroForUnreachableNodes) {
  RegisterAllOps();
  Rng rng(63);
  Graph g;
  const NodeId x = g.AddInput("x", Shape{4});
  const NodeId dead = g.AddOp("exp", "dead_branch", {x});
  const NodeId live = g.AddOp("tanh", "live", {x});
  g.AddOp("neg", "out", {live});
  g.SetOutput(g.op_nodes().back());

  Rng in_rng(64);
  const Tensor input = Tensor::Randn(Shape{4}, in_rng);
  const Executor exec(g, DeviceRegistry::Reference());
  const ExecutionTrace trace = exec.Run({input});
  const Tensor seed = Tensor::Full(g.node(g.output()).shape, 1.0f);
  const auto grads = BackpropFromOutput(g, trace, seed);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(grads[static_cast<size_t>(dead)][i], 0.0f);
    EXPECT_NE(grads[static_cast<size_t>(x)][i], 0.0f);
  }
}

}  // namespace
}  // namespace tao
