// End-to-end integration and property tests across the whole model zoo: the paper's
// motivating service downgrades (model swap, undeclared quantization), dispute
// localization properties under parameterized injection sites, threshold
// serialization round-trips, and DCR accounting invariants.

#include <cmath>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/calib/serialize.h"
#include "src/protocol/dispute.h"

namespace tao {
namespace {

// Calibration + commitment bundle per model, built once per suite run.
struct Bundle {
  Model model;
  ThresholdSet thresholds;
  ModelCommitment commitment;

  explicit Bundle(Model m)
      : model(std::move(m)),
        thresholds(MakeThresholds(model)),
        commitment(*model.graph, thresholds) {}

  static ThresholdSet MakeThresholds(const Model& model) {
    CalibrateOptions options;
    options.num_samples = 5;
    return Calibrate(model, DeviceRegistry::Fleet(), options).MakeThresholds(3.0);
  }
};

Bundle& BertBundle() {
  static Bundle* bundle = new Bundle(BuildBertMini());
  return *bundle;
}

Bundle& ResNetBundle() {
  static Bundle* bundle = new Bundle(BuildResNetMini());
  return *bundle;
}

Bundle& QwenBundle() {
  static Bundle* bundle = new Bundle(BuildQwenMini());
  return *bundle;
}

// --------------------------- service-downgrade scenarios ---------------------------

TEST(ServiceDowngradeTest, ModelSwapIsDetectedAndSlashed) {
  // The proposer silently serves a different (cheaper) model: emulated by committing
  // the honest graph but shipping outputs from differently-seeded weights. The output
  // discrepancy equals the swap-induced deviation, injected at the output node.
  Bundle& bundle = BertBundle();
  BertConfig other_config;
  other_config.seed = 0xdeadbeef;  // different weights = the "smaller/other model"
  const Model other = BuildBertMini(other_config);

  Rng rng(21);
  const std::vector<Tensor> input = bundle.model.sample_input(rng);
  const Executor honest(*bundle.model.graph, DeviceRegistry::ByName("H100"));
  const Executor swapped(*other.graph, DeviceRegistry::ByName("H100"));
  const Tensor y_honest = honest.RunOutput(input);
  const Tensor y_swapped = swapped.RunOutput(input);

  Tensor delta = y_swapped.Clone();
  auto dv = delta.mutable_values();
  const auto hv = y_honest.values();
  for (size_t i = 0; i < dv.size(); ++i) {
    dv[i] -= hv[i];
  }

  Coordinator coordinator;
  DisputeGame game(bundle.model, bundle.commitment, bundle.thresholds, coordinator);
  const DisputeResult result =
      game.Run(input, DeviceRegistry::ByName("H100"), DeviceRegistry::ByName("RTX4090"),
               {{bundle.model.graph->output(), delta}});
  EXPECT_TRUE(result.challenge_raised);
  EXPECT_TRUE(result.proposer_guilty);
  EXPECT_EQ(result.final_state, ClaimState::kProposerSlashed);
}

TEST(ServiceDowngradeTest, UndeclaredQuantizationIsDetected) {
  // The proposer quantizes the committed FP32 output to ~bf16 precision (8 mantissa
  // bits) — a silent cost-saving downgrade. The rounding deviation vastly exceeds the
  // calibrated FP32 cross-device envelope.
  Bundle& bundle = ResNetBundle();
  Rng rng(22);
  const std::vector<Tensor> input = bundle.model.sample_input(rng);
  const Executor exec(*bundle.model.graph, DeviceRegistry::ByName("A100"));
  const Tensor y = exec.RunOutput(input);
  Tensor delta = Tensor::Zeros(y.shape());
  auto dv = delta.mutable_values();
  const auto yv = y.values();
  for (size_t i = 0; i < dv.size(); ++i) {
    // Round to 8 mantissa bits (bf16-style).
    float quantized = yv[i];
    int exponent = 0;
    const float mantissa = std::frexp(quantized, &exponent);
    quantized = std::ldexp(std::round(mantissa * 256.0f) / 256.0f, exponent);
    dv[i] = quantized - yv[i];
  }

  Coordinator coordinator;
  DisputeGame game(bundle.model, bundle.commitment, bundle.thresholds, coordinator);
  const DisputeResult result =
      game.Run(input, DeviceRegistry::ByName("A100"), DeviceRegistry::ByName("RTX6000"),
               {{bundle.model.graph->output(), delta}});
  EXPECT_TRUE(result.challenge_raised);
  EXPECT_TRUE(result.proposer_guilty);
}

// ----------------------- parameterized localization properties ----------------------

struct LocalizationCase {
  int model_index;  // 0 = bert, 1 = resnet, 2 = qwen
  int site_fraction_num;
  int site_fraction_den;
};

class LocalizationTest : public ::testing::TestWithParam<LocalizationCase> {};

TEST_P(LocalizationTest, InjectionLocalizedToExactOperatorOrAdmissible) {
  const LocalizationCase param = GetParam();
  Bundle& bundle = param.model_index == 0   ? BertBundle()
                   : param.model_index == 1 ? ResNetBundle()
                                            : QwenBundle();
  const Graph& graph = *bundle.model.graph;
  const NodeId target = graph.op_nodes()[static_cast<size_t>(
      graph.num_ops() * param.site_fraction_num / param.site_fraction_den)];
  Rng delta_rng(0x10c + static_cast<uint64_t>(target));
  const Tensor delta = Tensor::Randn(graph.node(target).shape, delta_rng, 5e-2f);

  Coordinator coordinator;
  DisputeOptions options;
  options.partition_n = 4;
  DisputeGame game(bundle.model, bundle.commitment, bundle.thresholds, coordinator,
                   options);
  Rng rng(0x5eed + static_cast<uint64_t>(param.model_index));
  const std::vector<Tensor> input = bundle.model.sample_input(rng);
  const DisputeResult result =
      game.Run(input, DeviceRegistry::ByName("H100"), DeviceRegistry::ByName("RTX4090"),
               {{target, delta}});
  ASSERT_TRUE(result.challenge_raised);
  ASSERT_TRUE(result.proposer_guilty);
  EXPECT_EQ(result.leaf_op, target)
      << "localized to " << graph.node(result.leaf_op).label << " instead of "
      << graph.node(target).label;
  // Rounds bounded by ceil(log4 |V|) + 1.
  const double bound = std::ceil(std::log(static_cast<double>(graph.num_ops())) /
                                 std::log(4.0));
  EXPECT_LE(result.rounds, static_cast<int64_t>(bound) + 1);
  // Cost-ratio accounting sane.
  EXPECT_GT(result.cost_ratio, 0.0);
  EXPECT_LT(result.cost_ratio, 3.0);
}

INSTANTIATE_TEST_SUITE_P(Sites, LocalizationTest,
                         ::testing::Values(LocalizationCase{0, 1, 4}, LocalizationCase{0, 3, 4},
                                           LocalizationCase{1, 1, 4}, LocalizationCase{1, 2, 3},
                                           LocalizationCase{2, 1, 5}, LocalizationCase{2, 4, 5}));

TEST(HonestFleetTest, NoModelEverSlashedAcrossDevicePairs) {
  for (Bundle* bundle : {&BertBundle(), &ResNetBundle(), &QwenBundle()}) {
    Rng rng(0xfa1);
    const std::vector<Tensor> input = bundle->model.sample_input(rng);
    const auto& fleet = DeviceRegistry::Fleet();
    for (size_t p = 0; p < fleet.size(); ++p) {
      for (size_t c = 0; c < fleet.size(); ++c) {
        if (p == c) {
          continue;
        }
        Coordinator coordinator;
        DisputeGame game(bundle->model, bundle->commitment, bundle->thresholds, coordinator);
        const DisputeResult result = game.Run(input, fleet[p], fleet[c]);
        EXPECT_NE(result.final_state, ClaimState::kProposerSlashed)
            << bundle->model.name << " " << fleet[p].name << " vs " << fleet[c].name;
      }
    }
  }
}

// ------------------------------- serialization -------------------------------------

TEST(SerializeTest, ThresholdsRoundTripExactly) {
  Bundle& bundle = BertBundle();
  const std::string text = SerializeThresholds(bundle.thresholds);
  const ThresholdSet loaded = DeserializeThresholds(text);
  EXPECT_EQ(loaded.size(), bundle.thresholds.size());
  EXPECT_EQ(loaded.alpha(), bundle.thresholds.alpha());
  // Commit roots must agree bit-for-bit — a third party can post-verify r_e.
  EXPECT_EQ(DigestToHex(loaded.CommitRoot()), DigestToHex(bundle.thresholds.CommitRoot()));
}

TEST(SerializeTest, RejectsWrongHeader) {
  EXPECT_DEATH(DeserializeThresholds("bogus v9\n"), "tao-thresholds");
}

TEST(SerializeTest, V2CarriesFleetSignature) {
  Bundle& bundle = BertBundle();
  const std::string sig = FleetSignature(DeviceRegistry::Fleet());
  ASSERT_FALSE(sig.empty());
  const std::string text = SerializeThresholds(bundle.thresholds, sig);
  EXPECT_NE(text.find("tao-thresholds v2"), std::string::npos);
  std::string loaded_sig;
  const ThresholdSet loaded = DeserializeThresholds(text, &loaded_sig);
  // A loader compares the embedded signature against its own fleet: equality means
  // the calibration still describes this fleet's arithmetic; a mismatch means the
  // fleet composition drifted and the thresholds must be recalibrated.
  EXPECT_EQ(loaded_sig, sig);
  EXPECT_EQ(DigestToHex(loaded.CommitRoot()), DigestToHex(bundle.thresholds.CommitRoot()));
  // v1 files still parse, reporting no signature.
  std::string legacy_sig = "sentinel";
  (void)DeserializeThresholds(SerializeThresholds(bundle.thresholds), &legacy_sig);
  EXPECT_TRUE(legacy_sig.empty());
}

TEST(SerializeTest, StrictLoaderAcceptsMatchingSignature) {
  Bundle& bundle = BertBundle();
  const std::string sig = FleetSignature(DeviceRegistry::Fleet());
  const std::string text = SerializeThresholds(bundle.thresholds, sig);
  const ThresholdSet loaded = LoadThresholdsForFleet(text, sig);
  EXPECT_EQ(DigestToHex(loaded.CommitRoot()), DigestToHex(bundle.thresholds.CommitRoot()));
}

TEST(SerializeTest, StrictLoaderRejectsStaleSignatureLoudly) {
  // A calibration serialized against a DIFFERENT fleet arithmetic — here a
  // pre-vmath-style signature with no version token — must abort with both
  // signatures in the message, not load quietly (stale envelopes would turn the
  // soundness guarantee into silent false accepts/rejects).
  Bundle& bundle = BertBundle();
  const std::string current = FleetSignature(DeviceRegistry::Fleet());
  const std::string stale = "H100:tree:0:fma1:dbl";  // no vmath token: pre-vmath era
  const std::string text = SerializeThresholds(bundle.thresholds, stale);
  EXPECT_DEATH((void)LoadThresholdsForFleet(text, current), "fleet signature mismatch");
}

TEST(SerializeTest, StrictLoaderRejectsV1FilesLoudly) {
  // v1 files carry no signature at all, so the strict loader cannot prove they
  // match this fleet: always rejected.
  Bundle& bundle = BertBundle();
  const std::string v1_text = SerializeThresholds(bundle.thresholds);
  const std::string current = FleetSignature(DeviceRegistry::Fleet());
  EXPECT_DEATH((void)LoadThresholdsForFleet(v1_text, current), "no fleet signature");
}

}  // namespace
}  // namespace tao
