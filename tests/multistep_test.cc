// Tests for the Sec. 7 multi-step extension: deterministic tie-break rules make
// honest cross-device decoding converge token-for-token despite FP drift; temporal
// bisection finds the earliest cheated step with prefix finality.

#include <gtest/gtest.h>

#include "src/graph/executor.h"
#include "src/models/model_zoo.h"
#include "src/protocol/multistep.h"

namespace tao {
namespace {

TEST(TieBreakTest, ArgmaxWhenNoTies) {
  Tensor logits = Tensor::Zeros(Shape{5});
  logits.mutable_values()[3] = 2.0f;
  TieBreakConfig config;
  config.rule = TieBreakRule::kLexicographic;
  EXPECT_EQ(SelectToken(logits, config), 3);
}

TEST(TieBreakTest, LexicographicPicksSmallestNearTie) {
  Tensor logits = Tensor::Zeros(Shape{5});
  logits.mutable_values()[1] = 1.00000f;
  logits.mutable_values()[4] = 1.00001f;  // within margin of each other
  TieBreakConfig config;
  config.rule = TieBreakRule::kLexicographic;
  config.margin = 1e-3;
  EXPECT_EQ(SelectToken(logits, config), 1);
  // Plain argmax flips depending on which device rounded last — the failure mode the
  // rule removes.
  config.rule = TieBreakRule::kArgmax;
  EXPECT_EQ(SelectToken(logits, config), 4);
}

TEST(TieBreakTest, NearTieResolvedIdenticallyUnderLogitNoise) {
  // Two "devices" produce logits differing by ~1e-6 around a near-tie; lexicographic
  // selection agrees, argmax does not.
  Tensor a = Tensor::Zeros(Shape{8});
  a.mutable_values()[2] = 0.5000000f;
  a.mutable_values()[6] = 0.5000004f;
  Tensor b = a.Clone();
  b.mutable_values()[2] = 0.5000005f;
  b.mutable_values()[6] = 0.5000001f;
  TieBreakConfig lex;
  lex.rule = TieBreakRule::kLexicographic;
  lex.margin = 1e-4;
  EXPECT_EQ(SelectToken(a, lex), SelectToken(b, lex));
  TieBreakConfig argmax;
  argmax.rule = TieBreakRule::kArgmax;
  EXPECT_NE(SelectToken(a, argmax), SelectToken(b, argmax));
}

TEST(TieBreakTest, HashSeededDeterministicAndSeedSensitive) {
  Tensor logits = Tensor::Zeros(Shape{10});
  logits.mutable_values()[2] = 1.0f;
  logits.mutable_values()[5] = 1.0f;
  logits.mutable_values()[7] = 1.0f;
  TieBreakConfig config;
  config.rule = TieBreakRule::kHashSeeded;
  config.margin = 1e-6;
  const int64_t first = SelectToken(logits, config);
  EXPECT_EQ(first, SelectToken(logits, config));
  EXPECT_TRUE(first == 2 || first == 5 || first == 7);
}

class MultiStepFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new Model(BuildQwenMini());
    Rng rng(0xdec0de);
    prompt_ = new std::vector<float>();
    const int64_t window = model_->graph->node(model_->graph->input_nodes()[0]).shape.numel();
    for (int64_t i = 0; i < window; ++i) {
      prompt_->push_back(static_cast<float>(
          rng.NextBounded(static_cast<uint64_t>(model_->num_classes))));
    }
  }

  static void TearDownTestSuite() {
    delete prompt_;
    delete model_;
    prompt_ = nullptr;
    model_ = nullptr;
  }

  static Model* model_;
  static std::vector<float>* prompt_;
};

Model* MultiStepFixture::model_ = nullptr;
std::vector<float>* MultiStepFixture::prompt_ = nullptr;

TEST_F(MultiStepFixture, HonestCrossDeviceDecodingConverges) {
  const TieBreakConfig tie_break;  // lexicographic
  const DecodeResult a = Decode(*model_, *prompt_, 6, DeviceRegistry::ByName("H100"),
                                tie_break);
  const DecodeResult b = Decode(*model_, *prompt_, 6, DeviceRegistry::ByName("RTX4090"),
                                tie_break);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t s = 0; s < a.steps.size(); ++s) {
    EXPECT_EQ(a.steps[s].token, b.steps[s].token) << "step " << s;
  }
}

TEST_F(MultiStepFixture, TemporalRootsAgreeOnIdenticalDevice) {
  const TieBreakConfig tie_break;
  const DecodeResult a = Decode(*model_, *prompt_, 5, DeviceRegistry::ByName("A100"),
                                tie_break);
  const DecodeResult b = Decode(*model_, *prompt_, 5, DeviceRegistry::ByName("A100"),
                                tie_break);
  EXPECT_EQ(DigestToHex(a.temporal_root), DigestToHex(b.temporal_root));
  const TemporalDisputeResult dispute = LocalizeTemporalDivergence(a, b);
  EXPECT_FALSE(dispute.divergence_found);
  EXPECT_EQ(dispute.finalized_prefix, 5);
}

TEST_F(MultiStepFixture, TemporalBisectionFindsCheatedStep) {
  const TieBreakConfig tie_break;
  const Graph& graph = *model_->graph;
  const NodeId target = graph.op_nodes()[graph.num_ops() / 2];
  Rng delta_rng(5);
  StepPerturbation cheat;
  cheat.step = 3;
  cheat.perturbation.node = target;
  cheat.perturbation.delta = Tensor::Randn(graph.node(target).shape, delta_rng, 0.5f);

  const DecodeResult honest = Decode(*model_, *prompt_, 6, DeviceRegistry::ByName("A100"),
                                     tie_break);
  const DecodeResult cheated = Decode(*model_, *prompt_, 6, DeviceRegistry::ByName("A100"),
                                      tie_break, {cheat});
  const TemporalDisputeResult dispute = LocalizeTemporalDivergence(cheated, honest);
  ASSERT_TRUE(dispute.divergence_found);
  EXPECT_EQ(dispute.first_offending_step, 3);
  // Prefix finality: steps 0-2 are final even while step 3 is contested.
  EXPECT_EQ(dispute.finalized_prefix, 3);
  for (int64_t s = 0; s < 3; ++s) {
    EXPECT_EQ(honest.steps[static_cast<size_t>(s)].token,
              cheated.steps[static_cast<size_t>(s)].token);
  }
}

TEST_F(MultiStepFixture, PerturbationAtStepZeroLeavesNoFinalPrefix) {
  const TieBreakConfig tie_break;
  const Graph& graph = *model_->graph;
  const NodeId target = graph.op_nodes()[graph.num_ops() / 3];
  Rng delta_rng(6);
  StepPerturbation cheat;
  cheat.step = 0;
  cheat.perturbation.node = target;
  cheat.perturbation.delta = Tensor::Randn(graph.node(target).shape, delta_rng, 0.5f);
  const DecodeResult honest = Decode(*model_, *prompt_, 4, DeviceRegistry::ByName("A100"),
                                     tie_break);
  const DecodeResult cheated = Decode(*model_, *prompt_, 4, DeviceRegistry::ByName("A100"),
                                      tie_break, {cheat});
  const TemporalDisputeResult dispute = LocalizeTemporalDivergence(cheated, honest);
  ASSERT_TRUE(dispute.divergence_found);
  EXPECT_EQ(dispute.first_offending_step, 0);
  EXPECT_EQ(dispute.finalized_prefix, 0);
}

TEST(WideMlpTest, BuildsAndClassifies) {
  const Model model = BuildWideMlp();
  Rng rng(1);
  const std::vector<Tensor> input = model.sample_input(rng);
  const Executor exec(*model.graph, DeviceRegistry::Reference());
  const Tensor logits = exec.RunOutput(input);
  EXPECT_EQ(logits.numel(), model.num_classes);
}

}  // namespace
}  // namespace tao
