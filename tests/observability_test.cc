// Observability suite: span tracing, the trace collector, the resource tracker,
// the text exporters, and the embedded HTTP monitoring endpoint.
//
// The load-bearing test is the tracing sweep: the SAME gateway workload runs with
// span recording off and on, and every outcome — verdicts, C0 digests, claim ids,
// per-claim gas, the ledger — must be bitwise identical, proving the
// instrumentation is observation-only (the inertness contract of
// docs/observability.md). The suite must also run TSan-clean (CI runs it in the
// tsan job): the ring tests and the traced gateway run exercise the SPSC
// publish/drain protocol under real concurrency.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/observability/export.h"
#include "src/observability/http_endpoint.h"
#include "src/observability/resource_tracker.h"
#include "src/observability/trace.h"
#include "src/registry/serving_gateway.h"
#include "tests/test_claims.h"

namespace tao {
namespace {

// Drains and discards whatever earlier tests (or the service threads they spun
// up) left in the global tracer's rings, so each test folds only its own spans.
void FlushTracer() {
  std::vector<SpanRecord> discard;
  Tracer::Get().Drain(discard);
}

SpanRecord MakeSpan(uint64_t model, uint64_t sequence, SpanKind kind,
                    int64_t begin_ns, int64_t end_ns) {
  SpanRecord span;
  span.model = model;
  span.sequence = sequence;
  span.kind = kind;
  span.begin_ns = begin_ns;
  span.end_ns = end_ns;
  return span;
}

// ----------------------------------- SpanRing ----------------------------------------

TEST(SpanRingTest, PushDrainRoundTripPreservesOrder) {
  SpanRing ring;
  for (uint64_t i = 0; i < 5; ++i) {
    ring.Push(MakeSpan(1, i, SpanKind::kPhase1, 10 * static_cast<int64_t>(i),
                       10 * static_cast<int64_t>(i) + 5));
  }
  std::vector<SpanRecord> out;
  EXPECT_EQ(ring.DrainInto(out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].sequence, i);
  }
  EXPECT_EQ(ring.dropped(), 0);
  // Drained slots are reusable.
  ring.Push(MakeSpan(1, 99, SpanKind::kDeliver, 0, 1));
  out.clear();
  EXPECT_EQ(ring.DrainInto(out), 1u);
  EXPECT_EQ(out[0].sequence, 99u);
}

TEST(SpanRingTest, FullRingDropsAndCountsInsteadOfBlocking) {
  SpanRing ring;
  const size_t overflow = 10;
  for (size_t i = 0; i < SpanRing::kCapacity + overflow; ++i) {
    ring.Push(MakeSpan(1, i, SpanKind::kQueueWait, 0, 1));
  }
  EXPECT_EQ(ring.dropped(), static_cast<int64_t>(overflow));
  std::vector<SpanRecord> out;
  EXPECT_EQ(ring.DrainInto(out), SpanRing::kCapacity);
  // The retained spans are the OLDEST kCapacity (drops happen at the tail of the
  // burst, not by overwriting history).
  EXPECT_EQ(out.front().sequence, 0u);
  EXPECT_EQ(out.back().sequence, SpanRing::kCapacity - 1);
}

TEST(SpanRingTest, ConcurrentProducerAndDrainerLoseNothingBelowCapacity) {
  SpanRing ring;
  constexpr uint64_t kSpans = 20000;
  std::vector<SpanRecord> drained;
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kSpans; ++i) {
      ring.Push(MakeSpan(1, i, SpanKind::kPhase1, 0, 1));
      if ((i & 1023) == 0) {
        std::this_thread::yield();  // let the drainer keep the ring from filling
      }
    }
  });
  while (drained.size() + static_cast<size_t>(ring.dropped()) < kSpans) {
    ring.DrainInto(drained);
  }
  producer.join();
  ring.DrainInto(drained);
  // Everything that was not dropped arrives exactly once, in order.
  ASSERT_EQ(drained.size() + static_cast<size_t>(ring.dropped()), kSpans);
  uint64_t previous = 0;
  for (const SpanRecord& span : drained) {
    EXPECT_GE(span.sequence, previous);
    previous = span.sequence;
  }
}

// ------------------------------ ScopedTraceContext -----------------------------------

TEST(ScopedTraceContextTest, PublishesCohortAndRestoresOnExit) {
  EXPECT_EQ(ScopedTraceContext::Current(), nullptr);
  TraceContext cohort[2] = {{7, 100, 0, 3}, {7, 101, 1, 3}};
  {
    ScopedTraceContext scope(cohort, 2);
    ASSERT_NE(ScopedTraceContext::At(0), nullptr);
    EXPECT_EQ(ScopedTraceContext::At(0)->sequence, 100u);
    EXPECT_EQ(ScopedTraceContext::At(1)->sequence, 101u);
    EXPECT_EQ(ScopedTraceContext::At(2), nullptr);  // out of range
    EXPECT_EQ(ScopedTraceContext::Current(), ScopedTraceContext::At(0));
    // Nested publication (the lane's single-claim scope inside nothing else)
    // shadows and then restores.
    TraceContext single{9, 555, 2, kNoIndex};
    {
      ScopedTraceContext inner(&single, 1);
      EXPECT_EQ(ScopedTraceContext::Current()->sequence, 555u);
      EXPECT_EQ(ScopedTraceContext::At(1), nullptr);
    }
    EXPECT_EQ(ScopedTraceContext::At(1)->sequence, 101u);
  }
  EXPECT_EQ(ScopedTraceContext::Current(), nullptr);
}

// ------------------------------------ Tracer -----------------------------------------

TEST(TracerTest, RecordIsInertWhileDisabledAndRoundTripsWhileEnabled) {
  Tracer& tracer = Tracer::Get();
  tracer.Disable();
  FlushTracer();

  Tracer::Record(MakeSpan(3, 1, SpanKind::kSubmit, 0, 1));
  std::vector<SpanRecord> out;
  EXPECT_EQ(tracer.Drain(out), 0u) << "a disabled tracer must record nothing";

  tracer.Enable();
  Tracer::Record(MakeSpan(3, 1, SpanKind::kSubmit, 0, 1));
  Tracer::Record(MakeSpan(3, 2, SpanKind::kDeliver, 5, 9));
  tracer.Disable();
  EXPECT_EQ(tracer.Drain(out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].sequence, 1u);
  EXPECT_EQ(out[1].kind, SpanKind::kDeliver);
}

TEST(TracerTest, NowNsIsMonotonic) {
  const int64_t a = Tracer::NowNs();
  const int64_t b = Tracer::NowNs();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

// -------------------------------- TraceCollector -------------------------------------

// Records a full chain for (model, sequence) with the given submit->deliver
// latency; the kResolve span carries the claim id.
void RecordChain(uint64_t model, uint64_t sequence, uint64_t claim_id,
                 int64_t begin_ns, int64_t latency_ns) {
  const int64_t end = begin_ns + latency_ns;
  Tracer::Record(MakeSpan(model, sequence, SpanKind::kSubmit, begin_ns, begin_ns + 1));
  Tracer::Record(MakeSpan(model, sequence, SpanKind::kQueueWait, begin_ns + 1, begin_ns + 2));
  Tracer::Record(MakeSpan(model, sequence, SpanKind::kPhase1, begin_ns + 2, begin_ns + 3));
  SpanRecord resolve = MakeSpan(model, sequence, SpanKind::kResolve, begin_ns + 3, end - 1);
  resolve.claim_id = claim_id;
  Tracer::Record(resolve);
  Tracer::Record(MakeSpan(model, sequence, SpanKind::kDeliver, end - 1, end));
}

TEST(TraceCollectorTest, FoldsSpansIntoCompleteChains) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  FlushTracer();

  TraceCollectorOptions options;
  options.slow_claim_ms = 0.0;  // retain everything in the slow store
  TraceCollector collector(options);

  RecordChain(/*model=*/7, /*sequence=*/11, /*claim_id=*/42, /*begin_ns=*/1000,
              /*latency_ns=*/500);
  tracer.Disable();
  collector.Poll();

  const std::vector<ClaimTrace> traces = collector.Traces();
  ASSERT_EQ(traces.size(), 1u);
  const ClaimTrace& trace = traces[0];
  EXPECT_TRUE(trace.complete);
  EXPECT_EQ(trace.model, 7u);
  EXPECT_EQ(trace.sequence, 11u);
  EXPECT_EQ(trace.claim_id, 42u) << "claim id must be adopted from the resolve span";
  EXPECT_EQ(trace.spans.size(), 5u);
  EXPECT_TRUE(trace.has(SpanKind::kSubmit));
  EXPECT_TRUE(trace.has(SpanKind::kDeliver));
  EXPECT_FALSE(trace.has(SpanKind::kDisputeRound));
  EXPECT_TRUE(std::is_sorted(trace.spans.begin(), trace.spans.end(),
                             [](const SpanRecord& a, const SpanRecord& b) {
                               return a.begin_ns < b.begin_ns;
                             }));
  EXPECT_EQ(trace.begin_ns, 1000);
  EXPECT_EQ(trace.end_ns, 1500);
  EXPECT_EQ(collector.claims_completed(), 1);
  EXPECT_EQ(collector.spans_folded(), 5);
}

TEST(TraceCollectorTest, DeliveryEarlierInDrainBatchStillClosesTheChain) {
  // All five spans land in ONE Poll, with the delivery span drained FIRST (a
  // different ring). Fold-all-then-finalize must still assemble the whole chain.
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  FlushTracer();
  TraceCollectorOptions options;
  options.slow_claim_ms = 0.0;
  TraceCollector collector(options);

  Tracer::Record(MakeSpan(7, 21, SpanKind::kDeliver, 90, 100));
  std::thread other([] {
    Tracer::Record(MakeSpan(7, 21, SpanKind::kSubmit, 10, 12));
    Tracer::Record(MakeSpan(7, 21, SpanKind::kPhase1, 20, 60));
  });
  other.join();
  tracer.Disable();
  collector.Poll();

  const std::vector<ClaimTrace> traces = collector.Traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0].complete);
  EXPECT_EQ(traces[0].spans.size(), 3u);
  EXPECT_EQ(traces[0].begin_ns, 10);
  EXPECT_EQ(traces[0].end_ns, 100);
  EXPECT_EQ(collector.late_spans(), 0);
}

TEST(TraceCollectorTest, SlowClaimsAreRetainedAndFastOnesRideTheRecentRing) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  FlushTracer();
  TraceCollectorOptions options;
  options.slow_claim_ms = 1.0;
  options.max_recent_claims = 2;
  TraceCollector collector(options);

  RecordChain(5, 1, 101, 0, 2'000'000);      // 2 ms -> slow store
  RecordChain(5, 2, 102, 0, 100'000);        // 0.1 ms -> recent ring
  RecordChain(5, 3, 103, 0, 100'000);        // recent
  RecordChain(5, 4, 104, 0, 100'000);        // recent: evicts sequence 2
  tracer.Disable();
  collector.Poll();

  const std::vector<ClaimTrace> traces = collector.Traces();
  ASSERT_EQ(traces.size(), 3u);  // 1 slow + 2 recent (ring bound evicted one)
  EXPECT_EQ(traces[0].sequence, 1u) << "slow claims list first";
  EXPECT_GE(traces[0].latency_ms(), 1.0);
  for (size_t i = 1; i < traces.size(); ++i) {
    EXPECT_NE(traces[i].sequence, 2u) << "the oldest fast claim must age out";
  }
  EXPECT_EQ(collector.claims_completed(), 4);
}

TEST(TraceCollectorTest, LateSpansAfterFinalizationAreCountedAndDropped) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  FlushTracer();
  TraceCollectorOptions options;
  options.slow_claim_ms = 0.0;
  TraceCollector collector(options);

  RecordChain(6, 1, 7, 0, 1000);
  collector.Poll();  // finalizes (6, 1)
  Tracer::Record(MakeSpan(6, 1, SpanKind::kThresholdCheck, 2000, 2100));
  tracer.Disable();
  collector.Poll();

  EXPECT_EQ(collector.late_spans(), 1);
  const std::vector<ClaimTrace> traces = collector.Traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].spans.size(), 5u) << "the late span must not mutate the chain";
}

TEST(TraceCollectorTest, OpenChainCapEvictsOldestIncompleteChain) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  FlushTracer();
  TraceCollectorOptions options;
  options.slow_claim_ms = 0.0;
  options.max_open_claims = 2;
  TraceCollector collector(options);

  // Three incomplete chains; the cap keeps the two with the LATEST begins.
  Tracer::Record(MakeSpan(8, 1, SpanKind::kSubmit, 100, 110));
  Tracer::Record(MakeSpan(8, 2, SpanKind::kSubmit, 200, 210));
  Tracer::Record(MakeSpan(8, 3, SpanKind::kSubmit, 300, 310));
  collector.Poll();
  // Completing the evicted chain now arrives late (its chain is gone).
  Tracer::Record(MakeSpan(8, 1, SpanKind::kDeliver, 400, 410));
  // Completing a survivor works.
  Tracer::Record(MakeSpan(8, 2, SpanKind::kDeliver, 400, 410));
  tracer.Disable();
  collector.Poll();

  const std::vector<ClaimTrace> traces = collector.Traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].sequence, 2u);
  EXPECT_TRUE(traces[0].complete);
}

TEST(TraceCollectorTest, ExportersRenderChainsAndSpanNames) {
  Tracer& tracer = Tracer::Get();
  tracer.Enable();
  FlushTracer();
  TraceCollectorOptions options;
  options.slow_claim_ms = 0.0;
  TraceCollector collector(options);
  RecordChain(4, 9, 77, 1'000'000, 3'000'000);
  tracer.Disable();

  const std::string json = collector.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"submit\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":4"), std::string::npos);

  const std::string table = collector.TextTable();
  EXPECT_NE(table.find("seq"), std::string::npos);
  EXPECT_NE(table.find("submit"), std::string::npos);
  EXPECT_NE(table.find("deliver"), std::string::npos);
}

TEST(SpanKindNameTest, EveryKindHasAStableName) {
  EXPECT_STREQ(SpanKindName(SpanKind::kSubmit), "submit");
  EXPECT_STREQ(SpanKindName(SpanKind::kQueueWait), "queue_wait");
  EXPECT_STREQ(SpanKindName(SpanKind::kBatchForm), "batch_form");
  EXPECT_STREQ(SpanKindName(SpanKind::kPhase1), "phase1");
  EXPECT_STREQ(SpanKindName(SpanKind::kThresholdCheck), "threshold_check");
  EXPECT_STREQ(SpanKindName(SpanKind::kResolveWait), "resolve_wait");
  EXPECT_STREQ(SpanKindName(SpanKind::kResolve), "resolve");
  EXPECT_STREQ(SpanKindName(SpanKind::kDisputeRound), "dispute_round");
  EXPECT_STREQ(SpanKindName(SpanKind::kDeliver), "deliver");
}

// -------------------------------- ResourceTracker ------------------------------------

// Burns a little CPU so thread clocks visibly advance.
void SpinFor(std::chrono::milliseconds duration) {
  volatile uint64_t sink = 0;
  const auto deadline = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < deadline) {
    sink += 1;
  }
  (void)sink;
}

TEST(ResourceTrackerTest, ScopedThreadRegistersSamplesAndRecyclesOrdinals) {
  ResourceTracker& tracker = ResourceTracker::Get();
  double first_cpu = 0.0;
  std::thread worker([&first_cpu] {
    ResourceTracker::ScopedThread self("rt_test");
    EXPECT_EQ(self.name(), "rt_test/0");
    SpinFor(std::chrono::milliseconds(20));
    first_cpu = 1.0;  // made it through a registered body
  });
  worker.join();
  EXPECT_EQ(first_cpu, 1.0);

  // The slot survives the thread (dead, CPU retained).
  bool found_dead = false;
  double dead_cpu = 0.0;
  for (const ResourceTracker::ThreadSample& sample : tracker.Sample()) {
    if (sample.name == "rt_test/0") {
      found_dead = true;
      EXPECT_FALSE(sample.alive);
      dead_cpu = sample.cpu_seconds;
      EXPECT_GT(dead_cpu, 0.0) << "the guard's final self-sample must persist";
    }
  }
  ASSERT_TRUE(found_dead);

  // A new occupant of the same role recycles ordinal 0 and accumulates on top of
  // its predecessor's CPU (stable worker/0 identity across restarts).
  std::thread successor([] {
    ResourceTracker::ScopedThread self("rt_test");
    EXPECT_EQ(self.name(), "rt_test/0");
    SpinFor(std::chrono::milliseconds(20));
  });
  successor.join();
  for (const ResourceTracker::ThreadSample& sample : tracker.Sample()) {
    if (sample.name == "rt_test/0") {
      EXPECT_GE(sample.cpu_seconds, dead_cpu);
    }
  }

  // Two live occupants of one role get distinct ordinals.
  std::thread a([] {
    ResourceTracker::ScopedThread self("rt_pair");
    EXPECT_EQ(self.name(), "rt_pair/0");
    SpinFor(std::chrono::milliseconds(5));
  });
  std::thread b([&a] {
    ResourceTracker::ScopedThread self("rt_pair");
    // Ordinal depends on registration order; either way the two differ.
    EXPECT_TRUE(self.name() == "rt_pair/0" || self.name() == "rt_pair/1");
    a.join();
  });
  b.join();
}

TEST(ResourceTrackerTest, CountersIncludeRolesArenaFoldAndGauges) {
  ResourceTracker& tracker = ResourceTracker::Get();
  const size_t handle = tracker.RegisterGauge("resource/test_gauge", [] { return 12.5; });

  ResourceTracker::ScopedThread self("rt_counters");
  SpinFor(std::chrono::milliseconds(10));
  tracker.Sample();

  const std::vector<NamedCounter> counters = tracker.Counters();
  const auto value_of = [&counters](const std::string& name) -> const NamedCounter* {
    for (const NamedCounter& counter : counters) {
      if (counter.name == name) {
        return &counter;
      }
    }
    return nullptr;
  };
  const NamedCounter* own = value_of("rt_counters/0/cpu_seconds");
  ASSERT_NE(own, nullptr);
  EXPECT_GT(own->value, 0.0);
  ASSERT_NE(value_of("resource/cpu_seconds_total"), nullptr);
  EXPECT_GE(value_of("resource/cpu_seconds_total")->value, own->value);
  EXPECT_NE(value_of("resource/threads_alive"), nullptr);
  EXPECT_NE(value_of("resource/threads_registered"), nullptr);
  EXPECT_NE(value_of("resource/arena_outstanding_bytes"), nullptr);
  EXPECT_NE(value_of("resource/arena_peak_bytes"), nullptr);
  const NamedCounter* gauge = value_of("resource/test_gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, 12.5);

  tracker.UnregisterGauge(handle);
  for (const NamedCounter& counter : tracker.Counters()) {
    EXPECT_NE(counter.name, "resource/test_gauge") << "unregistered gauge leaked";
  }
}

TEST(ResourceTrackerTest, SamplerThreadRunsAndStopsIdempotently) {
  ResourceTracker& tracker = ResourceTracker::Get();
  EXPECT_FALSE(tracker.sampler_running());
  const int64_t before = tracker.samples_taken();
  tracker.StartSampler(std::chrono::milliseconds(2));
  tracker.StartSampler(std::chrono::milliseconds(2));  // idempotent
  EXPECT_TRUE(tracker.sampler_running());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (tracker.samples_taken() < before + 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(tracker.samples_taken(), before + 3);
  tracker.StopSampler();
  tracker.StopSampler();  // idempotent
  EXPECT_FALSE(tracker.sampler_running());
  // The sampler registered (and released) its own slot.
  bool saw_sampler = false;
  for (const ResourceTracker::ThreadSample& sample : tracker.Sample()) {
    saw_sampler |= sample.name == "sampler/0";
  }
  EXPECT_TRUE(saw_sampler);
}

// ---------------------------------- exporters ----------------------------------------

TEST(ExportTest, PrometheusNamesAreSanitizedUnderTheTaoPrefix) {
  EXPECT_EQ(PrometheusMetricName("model/1/claims/accepted"),
            "tao_model_1_claims_accepted");
  EXPECT_EQ(PrometheusMetricName("latency/p99_ms"), "tao_latency_p99_ms");
  EXPECT_EQ(PrometheusMetricName("weird-name.x"), "tao_weird_name_x");
}

TEST(ExportTest, PrometheusTextCarriesOriginalNamesOnHelpLines) {
  const std::vector<NamedCounter> counters = {{"model/1/claims/accepted", 128.0},
                                              {"latency/p99_ms", 2.5}};
  const std::string text = PrometheusText(counters);
  EXPECT_NE(text.find("# HELP tao_model_1_claims_accepted model/1/claims/accepted"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tao_model_1_claims_accepted untyped"), std::string::npos);
  EXPECT_NE(text.find("tao_model_1_claims_accepted 128"), std::string::npos);
  EXPECT_NE(text.find("tao_latency_p99_ms 2.5"), std::string::npos);
}

TEST(ExportTest, CountersJsonIsAFlatObjectKeyedByOriginalNames) {
  const std::vector<NamedCounter> counters = {{"a/b", 3.0}, {"c", 0.5}};
  const std::string json = CountersJson(counters);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"a/b\":3"), std::string::npos);
  EXPECT_NE(json.find("\"c\":0.5"), std::string::npos);
}

// ------------------------------- MonitoringServer ------------------------------------

// Minimal blocking HTTP GET against 127.0.0.1:port; returns the whole response.
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed for " << target;
    return {};
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MonitoringServerTest, ServesAllRoutesOverARealSocket) {
  MonitoringOptions options;
  options.enabled = true;
  options.port = 0;  // ephemeral
  options.enable_tracing = false;
  options.sampler_period_ms = 5;
  MonitoringServer server(options, [] {
    return std::vector<NamedCounter>{{"model/1/claims/accepted", 4.0},
                                     {"latency/p99_ms", 1.5}};
  });
  ASSERT_GT(server.port(), 0);

  EXPECT_NE(HttpGet(server.port(), "/healthz").find("ok"), std::string::npos);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("tao_model_1_claims_accepted 4"), std::string::npos);
  EXPECT_NE(metrics.find("latency/p99_ms"), std::string::npos);
  // The resource tracker's fold rides along on the same page.
  EXPECT_NE(metrics.find("tao_resource_cpu_seconds_total"), std::string::npos);
  EXPECT_NE(metrics.find("monitoring/0/cpu_seconds"), std::string::npos);

  const std::string snapshot = HttpGet(server.port(), "/snapshot");
  EXPECT_NE(snapshot.find("application/json"), std::string::npos);
  EXPECT_NE(snapshot.find("\"model/1/claims/accepted\":4"), std::string::npos);

  EXPECT_NE(HttpGet(server.port(), "/traces").find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/traces.json").find("traceEvents"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/nope").find("HTTP/1.1 404"), std::string::npos);
  EXPECT_GE(server.requests_served(), 6);

  // Route dispatch is also reachable without a socket (the demo's self-check).
  EXPECT_EQ(server.HandleForTest("/healthz"), "ok\n");
}

TEST(MonitoringServerTest, TracingOwnershipRestoresDisabledState) {
  ASSERT_FALSE(Tracer::enabled());
  {
    MonitoringOptions options;
    options.enabled = true;
    options.sampler_period_ms = 50;
    MonitoringServer server(options, [] { return std::vector<NamedCounter>{}; });
    EXPECT_TRUE(Tracer::enabled()) << "the server owns tracing for its lifetime";
  }
  EXPECT_FALSE(Tracer::enabled()) << "teardown must restore the disabled state";
  FlushTracer();
}

// --------------------------- the tracing inertness sweep -----------------------------

struct SweepOutcome {
  ClaimId claim_id = 0;
  Digest c0{};
  bool flagged = false;
  bool proposer_guilty = false;
  ClaimState final_state = ClaimState::kCommitted;
  int64_t gas_used = 0;
};

struct SweepResult {
  std::vector<SweepOutcome> outcomes;
  Balances balances;
  int64_t gas_total = 0;
};

class ObservabilityIntegrationTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    BertConfig config;
    config.seq_len = 12;
    config.dim = 32;
    config.ffn_dim = 64;
    config.layers = 2;
    model_ = new Model(BuildBertMini(config));
    CalibrateOptions calibrate;
    calibrate.num_samples = 3;
    thresholds_ = new ThresholdSet(
        Calibrate(*model_, DeviceRegistry::Fleet(), calibrate).MakeThresholds(3.0));
    commitment_ = new ModelCommitment(*model_->graph, *thresholds_);
  }

  static void TearDownTestSuite() {
    delete commitment_;
    delete thresholds_;
    delete model_;
  }

  static SweepResult RunWorkload(const std::vector<BatchClaim>& claims) {
    ModelRegistry registry;
    // Pin the shared pool's workers for the whole sweep: placement is part of
    // the outcome-inertness contract this suite holds, so the bitwise
    // comparisons below must survive it exactly like tracing on/off.
    GatewayOptions gateway_options;
    gateway_options.pin_workers = true;
    ServingGateway gateway(registry, gateway_options);
    const ModelId id = registry.Register(*model_);
    registry.Commit(id, *commitment_, *thresholds_);
    ServiceOptions options;
    options.num_workers = 2;
    options.pin_workers = true;
    options.queue_capacity = 4;
    options.batching.initial_hint = 3;
    options.verifier.reuse_buffers = true;
    gateway.Serve(id, options);

    std::vector<std::shared_ptr<ClaimTicket>> tickets;
    for (const BatchClaim& claim : claims) {
      GatewaySubmitResult result = gateway.Submit(id, claim);
      EXPECT_TRUE(result.accepted());
      tickets.push_back(std::move(result.ticket));
    }
    gateway.DrainAll();

    SweepResult result;
    for (const std::shared_ptr<ClaimTicket>& ticket : tickets) {
      const BatchClaimOutcome& outcome = ticket->Wait();
      result.outcomes.push_back({outcome.claim_id, outcome.c0, outcome.flagged,
                                 outcome.proposer_guilty, outcome.final_state,
                                 outcome.gas_used});
    }
    result.balances = registry.coordinator(id).balances();
    result.gas_total = registry.coordinator(id).gas().total();
    return result;
  }

  static Model* model_;
  static ThresholdSet* thresholds_;
  static ModelCommitment* commitment_;
};

Model* ObservabilityIntegrationTest::model_ = nullptr;
ThresholdSet* ObservabilityIntegrationTest::thresholds_ = nullptr;
ModelCommitment* ObservabilityIntegrationTest::commitment_ = nullptr;

TEST_F(ObservabilityIntegrationTest, TracingSweepIsBitwiseInert) {
  const std::vector<BatchClaim> claims =
      MakeTestClaims(*model_, 8, 0x0b5e7, /*cheat_rate=*/0.4, /*supervised_rate=*/0.6);

  Tracer::Get().Disable();
  FlushTracer();
  const SweepResult off = RunWorkload(claims);

  Tracer::Get().Enable();
  const SweepResult on = RunWorkload(claims);
  Tracer::Get().Disable();

  // The instrumented run actually recorded spans — the sweep is vacuous otherwise.
  std::vector<SpanRecord> spans;
  Tracer::Get().Drain(spans);
  ASSERT_GT(spans.size(), 0u);

  int64_t flagged = 0;
  ASSERT_EQ(on.outcomes.size(), off.outcomes.size());
  for (size_t i = 0; i < off.outcomes.size(); ++i) {
    EXPECT_EQ(on.outcomes[i].claim_id, off.outcomes[i].claim_id) << "claim " << i;
    EXPECT_EQ(on.outcomes[i].c0, off.outcomes[i].c0) << "claim " << i << " C0 diverged";
    EXPECT_EQ(on.outcomes[i].flagged, off.outcomes[i].flagged) << "claim " << i;
    EXPECT_EQ(on.outcomes[i].proposer_guilty, off.outcomes[i].proposer_guilty)
        << "claim " << i;
    EXPECT_EQ(on.outcomes[i].final_state, off.outcomes[i].final_state) << "claim " << i;
    EXPECT_EQ(on.outcomes[i].gas_used, off.outcomes[i].gas_used) << "claim " << i;
    flagged += off.outcomes[i].flagged ? 1 : 0;
  }
  ASSERT_GT(flagged, 0) << "the sweep must exercise the dispute path";
  EXPECT_EQ(on.balances.proposer, off.balances.proposer);
  EXPECT_EQ(on.balances.challenger, off.balances.challenger);
  EXPECT_EQ(on.balances.treasury, off.balances.treasury);
  EXPECT_EQ(on.gas_total, off.gas_total);
}

TEST_F(ObservabilityIntegrationTest, TracedWorkloadYieldsCompleteSpanChains) {
  const std::vector<BatchClaim> claims =
      MakeTestClaims(*model_, 6, 0x7ace, /*cheat_rate=*/0.5, /*supervised_rate=*/0.7);

  Tracer::Get().Enable();
  FlushTracer();
  const SweepResult result = RunWorkload(claims);
  Tracer::Get().Disable();

  TraceCollectorOptions options;
  options.slow_claim_ms = 0.0;  // retain every chain
  options.max_slow_claims = 64;
  TraceCollector collector(options);
  collector.Poll();

  const std::vector<ClaimTrace> traces = collector.Traces();
  ASSERT_EQ(traces.size(), claims.size());
  bool saw_threshold_check = false;
  bool saw_dispute_round = false;
  for (const ClaimTrace& trace : traces) {
    EXPECT_TRUE(trace.complete);
    EXPECT_NE(trace.claim_id, 0u) << "the resolve span must stamp the claim id";
    EXPECT_TRUE(trace.has(SpanKind::kSubmit));
    EXPECT_TRUE(trace.has(SpanKind::kQueueWait));
    EXPECT_TRUE(trace.has(SpanKind::kBatchForm));
    EXPECT_TRUE(trace.has(SpanKind::kPhase1));
    EXPECT_TRUE(trace.has(SpanKind::kResolveWait));
    EXPECT_TRUE(trace.has(SpanKind::kResolve));
    EXPECT_TRUE(trace.has(SpanKind::kDeliver));
    EXPECT_GE(trace.end_ns, trace.begin_ns);
    saw_threshold_check |= trace.has(SpanKind::kThresholdCheck);
    saw_dispute_round |= trace.has(SpanKind::kDisputeRound);
  }
  EXPECT_TRUE(saw_threshold_check) << "supervised claims must record threshold checks";
  bool any_flagged = false;
  for (const SweepOutcome& outcome : result.outcomes) {
    any_flagged |= outcome.flagged;
  }
  if (any_flagged) {
    EXPECT_TRUE(saw_dispute_round) << "flagged claims must record dispute rounds";
  }
  // Claim ids on the chains match the delivered outcomes one-to-one.
  std::vector<uint64_t> chain_ids;
  std::vector<uint64_t> outcome_ids;
  for (const ClaimTrace& trace : traces) {
    chain_ids.push_back(trace.claim_id);
  }
  for (const SweepOutcome& outcome : result.outcomes) {
    outcome_ids.push_back(outcome.claim_id);
  }
  std::sort(chain_ids.begin(), chain_ids.end());
  std::sort(outcome_ids.begin(), outcome_ids.end());
  EXPECT_EQ(chain_ids, outcome_ids);
}

TEST_F(ObservabilityIntegrationTest, GatewayMonitoringServesLiveCountersAndTraces) {
  const std::vector<BatchClaim> claims =
      MakeTestClaims(*model_, 4, 0x51ee7, /*cheat_rate=*/0.25, /*supervised_rate=*/0.5);

  FlushTracer();
  ModelRegistry registry;
  GatewayOptions gateway_options;
  gateway_options.monitoring.enabled = true;
  gateway_options.monitoring.port = 0;
  gateway_options.monitoring.sampler_period_ms = 10;
  gateway_options.monitoring.trace.slow_claim_ms = 0.0;
  gateway_options.pin_workers = true;  // exports one worker/<n>/core gauge per worker
  ServingGateway gateway(registry, gateway_options);
  ASSERT_NE(gateway.monitoring(), nullptr);
  const int port = gateway.monitoring()->port();
  ASSERT_GT(port, 0);

  const ModelId id = registry.Register(*model_);
  registry.Commit(id, *commitment_, *thresholds_);
  gateway.Serve(id);
  for (const BatchClaim& claim : claims) {
    ASSERT_TRUE(gateway.Submit(id, claim).accepted());
  }
  gateway.Drain(id);

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("model/" + std::to_string(id) + "/claims/completed"),
            std::string::npos);
  EXPECT_NE(metrics.find("aggregate/claims/completed"), std::string::npos);
  EXPECT_NE(metrics.find("latency/p99_ms"), std::string::npos);
  EXPECT_NE(metrics.find("worker/0/cpu_seconds"), std::string::npos);
  EXPECT_NE(metrics.find("lane/0/cpu_seconds"), std::string::npos);
  EXPECT_NE(metrics.find("resource/pool_queue_depth"), std::string::npos);
  // Pinned placement gauge: value is the assigned core, or -1 when pinning was
  // a no-op (1-core host or TAO_DISABLE_PINNING) — the gauge must exist either way.
  EXPECT_NE(metrics.find("worker/0/core"), std::string::npos);

  const std::string traces = HttpGet(port, "/traces");
  EXPECT_NE(traces.find("deliver"), std::string::npos)
      << "/traces must show at least one complete chain";
  EXPECT_TRUE(Tracer::enabled()) << "monitoring keeps tracing on while the gateway lives";
}

}  // namespace
}  // namespace tao
