// Multi-model registry + serving-gateway suite. Three layers:
//
//   * Lifecycle: the register -> commit -> serve -> drain -> retire state machine,
//     with every pre-serving / post-serving submission shed under its DISTINCT
//     gateway reject code, and drain-before-retire delivering every in-flight
//     verdict before the service tears down.
//
//   * The routing bitwise-equivalence sweep: three zoo models served concurrently
//     through one gateway, one submitter thread per model (cross-model
//     interleaving is real concurrency; each model's submission order is fixed),
//     coordinator shards {1, 4} per model. Every model's verdicts, C0 digests,
//     claim ids, per-claim gas, and full ledger must be bitwise identical to a
//     sequential reference replay of THAT model's submission sequence alone —
//     the per-model determinism contract of docs/registry.md.
//
//   * Metrics: per-model/aggregate namespacing (no counter-name collisions), and
//     the budget-apportionment rule.
//
// The whole suite must run TSan-clean (CI runs it in the tsan job).

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/registry/serving_gateway.h"
#include "tests/test_claims.h"

namespace tao {
namespace {

// Small zoo variants: the sweep runs 3 models x 2 shard configs x claims, so the
// minis are scaled below their defaults to keep the suite fast. Structure (op mix,
// attention/conv/norm kinds) is what the routing equivalence exercises, not width.
Model BuildSmallBert() {
  BertConfig config;
  config.seq_len = 12;
  config.dim = 32;
  config.ffn_dim = 64;
  config.layers = 2;
  return BuildBertMini(config);
}

Model BuildSmallQwen() {
  QwenConfig config;
  config.seq_len = 12;
  config.dim = 32;
  config.ffn_dim = 64;
  config.layers = 2;
  return BuildQwenMini(config);
}

Model BuildSmallResNet() {
  ResNetConfig config;
  config.image_size = 16;
  config.stem_channels = 4;
  config.blocks_per_stage = {1, 1};
  config.num_classes = 8;
  return BuildResNetMini(config);
}

// One model's committed artifacts, shared across the suite's gateways.
struct CommittedModel {
  Model model;
  std::unique_ptr<ThresholdSet> thresholds;
  std::unique_ptr<ModelCommitment> commitment;
};

CommittedModel MakeCommitted(Model model) {
  CommittedModel committed;
  committed.model = std::move(model);
  CalibrateOptions options;
  options.num_samples = 3;
  committed.thresholds = std::make_unique<ThresholdSet>(
      Calibrate(committed.model, DeviceRegistry::Fleet(), options).MakeThresholds(3.0));
  committed.commitment =
      std::make_unique<ModelCommitment>(*committed.model.graph, *committed.thresholds);
  return committed;
}

class RegistryGatewayFixture : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    models_ = new std::vector<CommittedModel>();
    models_->push_back(MakeCommitted(BuildSmallBert()));
    models_->push_back(MakeCommitted(BuildSmallQwen()));
    models_->push_back(MakeCommitted(BuildSmallResNet()));
  }

  static void TearDownTestSuite() {
    delete models_;
    models_ = nullptr;
  }

  static std::vector<CommittedModel>* models_;
};

std::vector<CommittedModel>* RegistryGatewayFixture::models_ = nullptr;

// Registers and commits every fixture model into `registry` with `shards`
// coordinator shards each; returns the assigned ids (fixture order).
std::vector<ModelId> CommitAll(ModelRegistry& registry, size_t shards) {
  std::vector<ModelId> ids;
  for (const CommittedModel& committed : *RegistryGatewayFixture::models_) {
    const ModelId id = registry.Register(committed.model);
    ModelCommitConfig config;
    config.coordinator_shards = shards;
    registry.Commit(id, *committed.commitment, *committed.thresholds, config);
    ids.push_back(id);
  }
  return ids;
}

// Reference outcome of one claim under the model's sequential path.
struct ReferenceOutcome {
  ClaimId claim_id = 0;
  Digest c0{};
  bool flagged = false;
  bool proposer_guilty = false;
  ClaimState final_state = ClaimState::kCommitted;
  int64_t gas_used = 0;
};

// Replays `claims` one at a time in order against `coordinator`, homing claim i to
// shard i % S — exactly the per-shard lane assignment the service performs — so the
// reference reproduces what a gateway-run model must produce bitwise.
std::vector<ReferenceOutcome> RunSequentialReference(const CommittedModel& committed,
                                                     const std::vector<BatchClaim>& claims,
                                                     Coordinator& coordinator) {
  const Graph& graph = *committed.model.graph;
  const size_t shards = coordinator.num_shards();
  std::vector<ReferenceOutcome> outcomes;
  outcomes.reserve(claims.size());
  for (size_t i = 0; i < claims.size(); ++i) {
    const BatchClaim& claim = claims[i];
    const uint64_t shard = i % shards;
    ReferenceOutcome ref;
    if (claim.supervised()) {
      DisputeOptions options;
      options.coordinator_shard = shard;
      DisputeGame game(committed.model, *committed.commitment, *committed.thresholds,
                       coordinator, options);
      const DisputeResult result = game.Run(claim.inputs, *claim.proposer_device,
                                            *claim.verifier_device, claim.perturbations);
      ref.claim_id = result.claim_id;
      ref.c0 = coordinator.claim(result.claim_id).c0;
      ref.flagged = result.challenge_raised;
      ref.proposer_guilty = result.proposer_guilty;
      ref.final_state = result.final_state;
      ref.gas_used = result.gas_used;
    } else {
      const Executor exec(graph, *claim.proposer_device);
      const ExecutionTrace trace = exec.RunPerturbed(claim.inputs, claim.perturbations);
      const DisputeOptions defaults;
      ResultMeta meta;
      meta.device = claim.proposer_device->name;
      meta.challenge_window = defaults.challenge_window;
      ref.c0 = ComputeResultCommitment(*committed.commitment, claim.inputs,
                                       trace.value(graph.output()), meta);
      const ClaimId id = coordinator.SubmitCommitment(ref.c0, defaults.challenge_window,
                                                      defaults.proposer_bond, shard);
      coordinator.AdvanceTimeFor(id, defaults.challenge_window);
      ref.claim_id = id;
      ref.final_state = coordinator.TryFinalize(id);
      ref.gas_used = coordinator.claim_gas(id);
    }
    outcomes.push_back(ref);
  }
  return outcomes;
}

// ----------------------------------- lifecycle ---------------------------------------

TEST_F(RegistryGatewayFixture, LifecycleRejectCodesAreDistinctPerState) {
  const CommittedModel& committed = (*models_)[0];
  const std::vector<BatchClaim> claims =
      MakeTestClaims(committed.model, 2, 0x11f3, /*cheat_rate=*/0.0,
                     /*supervised_rate=*/0.0);

  ModelRegistry registry;
  ServingGateway gateway(registry);

  // Unknown id: never registered.
  EXPECT_EQ(gateway.Submit(42, claims[0]).status, GatewayStatus::kUnknownModel);

  // Registered but not committed: there is nothing to verify against.
  const ModelId id = registry.Register(committed.model);
  EXPECT_EQ(registry.state(id), ModelLifecycle::kRegistered);
  EXPECT_EQ(gateway.Submit(id, claims[0]).status, GatewayStatus::kNotCommitted);

  // Committed but no serving capacity attached.
  registry.Commit(id, *committed.commitment, *committed.thresholds);
  EXPECT_EQ(registry.state(id), ModelLifecycle::kCommitted);
  EXPECT_EQ(gateway.Submit(id, claims[0]).status, GatewayStatus::kNotServing);
  EXPECT_EQ(registry.coordinator(id).model_id(), id);

  // Serving: accepted, and the claim settles against THIS model's coordinator.
  gateway.Serve(id);
  EXPECT_EQ(registry.state(id), ModelLifecycle::kServing);
  GatewaySubmitResult accepted = gateway.Submit(id, claims[0]);
  ASSERT_TRUE(accepted.accepted());
  const BatchClaimOutcome& outcome = accepted.ticket->Wait();
  EXPECT_EQ(outcome.model, id);
  EXPECT_EQ(registry.coordinator(id).claim(outcome.claim_id).model, id);

  // Draining: admission closed, in-flight work still delivers.
  gateway.Drain(id);
  EXPECT_EQ(registry.state(id), ModelLifecycle::kDraining);
  EXPECT_EQ(gateway.Submit(id, claims[1]).status, GatewayStatus::kDraining);

  // Retired: service gone; ledger and metrics stay readable.
  gateway.Retire(id);
  EXPECT_EQ(registry.state(id), ModelLifecycle::kRetired);
  EXPECT_EQ(gateway.Submit(id, claims[1]).status, GatewayStatus::kRetired);
  EXPECT_EQ(gateway.model_metrics(id).completed, 1);
  EXPECT_EQ(registry.coordinator(id).claim(outcome.claim_id).state,
            ClaimState::kFinalized);

  const GatewaySnapshot snapshot = gateway.metrics();
  EXPECT_EQ(snapshot.rejected_unknown, 1);
  EXPECT_EQ(snapshot.rejected_not_committed, 1);
  EXPECT_EQ(snapshot.rejected_not_serving, 1);
  EXPECT_EQ(snapshot.rejected_draining, 1);
  EXPECT_EQ(snapshot.rejected_retired, 1);
}

TEST_F(RegistryGatewayFixture, DrainBeforeRetireDeliversEveryInFlightVerdict) {
  const CommittedModel& committed = (*models_)[0];
  // Supervised mix so drain has real resolution work (disputes) in flight.
  const std::vector<BatchClaim> claims =
      MakeTestClaims(committed.model, 8, 0xd7a1f, /*cheat_rate=*/0.4,
                     /*supervised_rate=*/0.6);

  ModelRegistry registry;
  ServingGateway gateway(registry);
  const ModelId id = registry.Register(committed.model);
  registry.Commit(id, *committed.commitment, *committed.thresholds);
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 4;  // backpressure mid-run: claims are in flight at Drain
  options.batching.initial_hint = 2;
  options.verifier.reuse_buffers = true;
  gateway.Serve(id, options);

  std::vector<std::shared_ptr<ClaimTicket>> tickets;
  for (const BatchClaim& claim : claims) {
    GatewaySubmitResult result = gateway.Submit(id, claim);
    ASSERT_TRUE(result.accepted());
    tickets.push_back(std::move(result.ticket));
  }
  gateway.Drain(id);

  for (size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_TRUE(tickets[i]->done()) << "drain returned before claim " << i << " resolved";
  }
  const MetricsSnapshot metrics = gateway.model_metrics(id);
  EXPECT_EQ(metrics.accepted, static_cast<int64_t>(claims.size()));
  EXPECT_EQ(metrics.completed, static_cast<int64_t>(claims.size()));

  gateway.Retire(id);
  // The final snapshot survives the teardown.
  EXPECT_EQ(gateway.model_metrics(id).completed, static_cast<int64_t>(claims.size()));

  // Re-serve: a new service generation over the SAME coordinator — claim ids and
  // the ledger continue where the previous generation stopped.
  const int64_t gas_before = registry.coordinator(id).gas().total();
  gateway.Serve(id, options);
  EXPECT_EQ(registry.state(id), ModelLifecycle::kServing);
  GatewaySubmitResult reserved = gateway.Submit(id, claims[0]);
  ASSERT_TRUE(reserved.accepted());
  const BatchClaimOutcome& outcome = reserved.ticket->Wait();
  EXPECT_EQ(outcome.claim_id, static_cast<ClaimId>(claims.size() + 1));
  EXPECT_GT(registry.coordinator(id).gas().total(), gas_before);
  gateway.Drain(id);
}

TEST_F(RegistryGatewayFixture, GatewayTeardownRetiresModelsForLaterGenerations) {
  const CommittedModel& committed = (*models_)[0];
  const std::vector<BatchClaim> claims =
      MakeTestClaims(committed.model, 1, 0x9e4a, /*cheat_rate=*/0.0,
                     /*supervised_rate=*/0.0);
  ModelRegistry registry;
  ModelId id = 0;
  {
    ServingGateway gateway(registry);
    id = registry.Register(committed.model);
    registry.Commit(id, *committed.commitment, *committed.thresholds);
    gateway.Serve(id);
    ASSERT_TRUE(gateway.Submit(id, claims[0]).accepted());
  }
  // The destructor drained AND retired: the registry (which outlives any one
  // gateway) is not stranded in kDraining, so a later gateway generation can
  // re-serve the model over its persistent coordinator.
  EXPECT_EQ(registry.state(id), ModelLifecycle::kRetired);
  ServingGateway second(registry);
  second.Serve(id);
  EXPECT_EQ(registry.state(id), ModelLifecycle::kServing);
  GatewaySubmitResult result = second.Submit(id, claims[0]);
  ASSERT_TRUE(result.accepted());
  EXPECT_EQ(result.ticket->Wait().claim_id, 2u);  // ids continue across generations
}

// --------------------- routing bitwise-equivalence sweep -----------------------------

TEST_F(RegistryGatewayFixture, InterleavedModelsMatchPerModelSequentialReferences) {
  constexpr size_t kClaimsPerModel = 6;
  const size_t num_models = models_->size();

  // Per-model deterministic workloads (distinct seeds -> distinct inputs/cheats).
  std::vector<std::vector<BatchClaim>> claims(num_models);
  for (size_t m = 0; m < num_models; ++m) {
    claims[m] = MakeTestClaims((*models_)[m].model, kClaimsPerModel, 0x90de + m,
                               /*cheat_rate=*/0.4, /*supervised_rate=*/0.6);
  }

  for (const size_t shards : {size_t{1}, size_t{4}}) {
    const std::string shard_label = "shards=" + std::to_string(shards);

    // Per-model sequential references on fresh coordinators with the same shard
    // count and model ids the gateway run will use (ids are dense from 1 in
    // registration order).
    std::vector<std::unique_ptr<Coordinator>> reference_coordinators;
    std::vector<std::vector<ReferenceOutcome>> references;
    for (size_t m = 0; m < num_models; ++m) {
      reference_coordinators.push_back(std::make_unique<Coordinator>(
          GasSchedule{}, /*round_timeout=*/10, shards, static_cast<ModelId>(m + 1)));
      references.push_back(RunSequentialReference((*models_)[m], claims[m],
                                                  *reference_coordinators[m]));
    }
    int64_t flagged = 0;
    for (const auto& reference : references) {
      for (const ReferenceOutcome& ref : reference) {
        flagged += ref.flagged ? 1 : 0;
      }
    }
    ASSERT_GT(flagged, 0) << "the sweep must exercise the dispute path";

    ModelRegistry registry;
    ServingGateway gateway(registry);
    const std::vector<ModelId> ids = CommitAll(registry, shards);
    for (size_t m = 0; m < num_models; ++m) {
      ServiceOptions options;
      options.num_workers = 2;
      options.queue_capacity = 4;  // admission backpressure mid-run
      options.batching.initial_hint = 3;
      options.verifier.dispute.num_threads = 2;
      options.verifier.reuse_buffers = true;
      gateway.Serve(ids[m], options);
    }
    EXPECT_EQ(gateway.serving_count(), num_models);

    // One submitter thread per model: cross-model arrival order is a real race,
    // but each MODEL's submission order is fixed — which is all the per-model
    // invariant conditions on.
    std::vector<std::vector<std::shared_ptr<ClaimTicket>>> tickets(num_models);
    std::vector<std::thread> submitters;
    for (size_t m = 0; m < num_models; ++m) {
      submitters.emplace_back([&, m] {
        for (const BatchClaim& claim : claims[m]) {
          GatewaySubmitResult result = gateway.Submit(ids[m], claim, /*submitter=*/m);
          ASSERT_TRUE(result.accepted());
          tickets[m].push_back(std::move(result.ticket));
        }
      });
    }
    for (std::thread& t : submitters) {
      t.join();
    }
    gateway.DrainAll();

    // Per-model bitwise equivalence: outcomes, claim ids, gas, and the model's
    // whole ledger match the model's OWN sequential replay, no matter how the
    // three models' submissions interleaved at the gateway.
    for (size_t m = 0; m < num_models; ++m) {
      const std::string label = shard_label + " model=" + (*models_)[m].model.name;
      ASSERT_EQ(tickets[m].size(), kClaimsPerModel) << label;
      for (size_t i = 0; i < kClaimsPerModel; ++i) {
        const BatchClaimOutcome& outcome = tickets[m][i]->Wait();
        const ReferenceOutcome& ref = references[m][i];
        EXPECT_EQ(outcome.model, ids[m]) << label << ": claim " << i;
        EXPECT_EQ(outcome.claim_id, ref.claim_id) << label << ": claim " << i;
        EXPECT_EQ(outcome.c0, ref.c0) << label << ": claim " << i << " C0 diverged";
        EXPECT_EQ(outcome.flagged, ref.flagged) << label << ": claim " << i;
        EXPECT_EQ(outcome.proposer_guilty, ref.proposer_guilty)
            << label << ": claim " << i;
        EXPECT_EQ(outcome.final_state, ref.final_state) << label << ": claim " << i;
        EXPECT_EQ(outcome.gas_used, ref.gas_used) << label << ": claim " << i;
      }
      const Coordinator& coordinator = registry.coordinator(ids[m]);
      const Balances got = coordinator.balances();
      const Balances want = reference_coordinators[m]->balances();
      EXPECT_EQ(got.proposer, want.proposer) << label;
      EXPECT_EQ(got.challenger, want.challenger) << label;
      EXPECT_EQ(got.treasury, want.treasury) << label;
      EXPECT_EQ(coordinator.gas().total(), reference_coordinators[m]->gas().total())
          << label;
      // Every claim record is scoped to its model.
      for (size_t shard = 0; shard < shards; ++shard) {
        for (const ClaimId claim_id : coordinator.shard_claims(shard)) {
          EXPECT_EQ(coordinator.claim(claim_id).model, ids[m]) << label;
        }
      }
    }
  }
}

// ------------------------------ metrics + budgets ------------------------------------

TEST_F(RegistryGatewayFixture, NamedCountersAreNamespacedAndCollisionFree) {
  const CommittedModel& committed = (*models_)[0];
  ModelRegistry registry;
  ServingGateway gateway(registry);
  const std::vector<ModelId> ids = CommitAll(registry, /*shards=*/1);
  for (const ModelId id : ids) {
    gateway.Serve(id);
  }
  // A couple of real verdicts so the counters are non-trivial.
  const std::vector<BatchClaim> claims =
      MakeTestClaims(committed.model, 2, 0xc0de, /*cheat_rate=*/0.0,
                     /*supervised_rate=*/0.5);
  for (const BatchClaim& claim : claims) {
    ASSERT_TRUE(gateway.Submit(ids[0], claim).accepted());
  }
  gateway.DrainAll();

  const GatewaySnapshot snapshot = gateway.metrics();
  const std::vector<NamedCounter> counters = snapshot.NamedCounters();
  std::set<std::string> names;
  for (const NamedCounter& counter : counters) {
    EXPECT_TRUE(names.insert(counter.name).second)
        << "duplicate counter name: " << counter.name;
  }
  // Every model exports under its own scope; the aggregate under its own.
  for (const ModelId id : ids) {
    const std::string scope = "model/" + std::to_string(id) + "/claims/accepted";
    EXPECT_EQ(names.count(scope), 1u) << scope;
  }
  EXPECT_EQ(names.count("aggregate/claims/accepted"), 1u);
  EXPECT_EQ(names.count("gateway/rejected/unknown_model"), 1u);

  // The aggregate is the fold of the per-model snapshots.
  int64_t accepted_sum = 0;
  for (const GatewayModelMetrics& model : snapshot.models) {
    accepted_sum += model.service.accepted;
  }
  EXPECT_EQ(snapshot.aggregate.accepted, accepted_sum);
  EXPECT_EQ(snapshot.aggregate.accepted, static_cast<int64_t>(claims.size()));
  EXPECT_EQ(snapshot.aggregate.completed, static_cast<int64_t>(claims.size()));
}

TEST(GatewayBudgetTest, ApportionmentIsProportionalWithFloor) {
  // Equal weights split evenly.
  EXPECT_EQ(ServingGateway::ApportionBudget(100, 10, {1, 1}),
            (std::vector<int64_t>{50, 50}));
  // Floor first, remainder by weight: the hot model takes the bulk, the idle one
  // keeps the floor, and the shares never over-commit the total.
  const std::vector<int64_t> shares = ServingGateway::ApportionBudget(1000, 50, {99, 1});
  EXPECT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0], 941);  // 50 + 99% of the 900 remainder
  EXPECT_EQ(shares[1], 59);   // 50 + 1% of the remainder
  EXPECT_LE(shares[0] + shares[1], 1000);
  // Many idle models next to one hot model must not multiply the floor past the
  // total (the over-commit regression this rule exists to prevent).
  const std::vector<int64_t> crowd =
      ServingGateway::ApportionBudget(1000, 10, {91, 1, 1, 1, 1, 1, 1, 1, 1, 1});
  int64_t sum = 0;
  for (const int64_t share : crowd) {
    EXPECT_GE(share, 10);
    sum += share;
  }
  EXPECT_LE(sum, 1000);
  // The floor is a hard minimum: a too-small total over-commits rather than
  // starving models below a workable cohort.
  EXPECT_EQ(ServingGateway::ApportionBudget(10, 8, {1, 1}),
            (std::vector<int64_t>{8, 8}));
  // Degenerate: nothing serving.
  EXPECT_TRUE(ServingGateway::ApportionBudget(1000, 50, {}).empty());
}

TEST_F(RegistryGatewayFixture, ServingModelsReceiveBudgetShares) {
  ModelRegistry registry;
  GatewayOptions options;
  options.total_memory_budget_bytes = 64ll << 20;
  options.min_model_budget_bytes = 4ll << 20;
  ServingGateway gateway(registry, options);
  const std::vector<ModelId> ids = CommitAll(registry, /*shards=*/1);
  for (const ModelId id : ids) {
    gateway.Serve(id);
  }
  // Idle models: equal queue pressure, so equal shares that cover the budget.
  int64_t total = 0;
  for (const ModelId id : ids) {
    const int64_t share = gateway.model_memory_budget(id);
    EXPECT_GE(share, options.min_model_budget_bytes);
    total += share;
  }
  EXPECT_GE(total, options.total_memory_budget_bytes - static_cast<int64_t>(ids.size()));
  gateway.DrainAll();
}

}  // namespace
}  // namespace tao
