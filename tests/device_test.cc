// Tests for the simulated accelerator fleet: reduction orderings must agree to within
// IEEE-754 reassociation error, genuinely differ bitwise on hard inputs, and be
// deterministic per profile.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/device/device.h"
#include "src/util/rng.h"

namespace tao {
namespace {

constexpr double kUnitRoundoff = 0x1.0p-24;

std::vector<float> RandomVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) {
    x = static_cast<float>(rng.NextGaussian());
  }
  return v;
}

TEST(DeviceTest, FleetHasFourDistinctDevices) {
  const auto& fleet = DeviceRegistry::Fleet();
  ASSERT_EQ(fleet.size(), 4u);
  for (size_t i = 0; i < fleet.size(); ++i) {
    for (size_t j = i + 1; j < fleet.size(); ++j) {
      EXPECT_NE(fleet[i].name, fleet[j].name);
    }
  }
}

TEST(DeviceTest, ByNameFindsAllDevices) {
  EXPECT_EQ(DeviceRegistry::ByName("reference").name, "reference");
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_EQ(DeviceRegistry::ByName(d.name).name, d.name);
  }
}

TEST(DeviceTest, AccumulateExactForSmallIntegers) {
  // Integer-valued sums below 2^24 are exact in FP32 regardless of order.
  const std::vector<float> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_EQ(d.Accumulate(xs), 55.0f) << d.name;
  }
  EXPECT_EQ(DeviceRegistry::Reference().Accumulate(xs), 55.0f);
}

TEST(DeviceTest, OrderingsProduceDifferentRoundings) {
  // With 64k random normals, distinct association orders round differently with
  // overwhelming probability.
  const auto xs = RandomVector(1 << 16, 42);
  const float ref = DeviceRegistry::Reference().Accumulate(xs);
  int differing = 0;
  for (const auto& d : DeviceRegistry::Fleet()) {
    if (d.Accumulate(xs) != ref) {
      ++differing;
    }
  }
  EXPECT_GE(differing, 3) << "fleet should be numerically heterogeneous";
}

TEST(DeviceTest, AccumulateDeterministicPerProfile) {
  const auto xs = RandomVector(4097, 7);
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_EQ(d.Accumulate(xs), d.Accumulate(xs)) << d.name;
  }
}

TEST(DeviceTest, CrossDeviceDeviationWithinTheoreticalEnvelope) {
  // |sum_d - sum_exact| <= gamma_{n-1} * sum |x_i| for every association order
  // (Higham 2002, Sec. 4.2 — reassociation only changes which gamma applies, and
  // gamma_{n-1} covers every order).
  const size_t n = 2048;
  const auto xs = RandomVector(n, 1234);
  double exact = 0.0;
  double abs_sum = 0.0;
  for (const float x : xs) {
    exact += static_cast<double>(x);
    abs_sum += std::abs(static_cast<double>(x));
  }
  const double gamma = (static_cast<double>(n - 1) * kUnitRoundoff) /
                       (1.0 - static_cast<double>(n - 1) * kUnitRoundoff);
  const double envelope = gamma * abs_sum;
  for (const auto& d : DeviceRegistry::Fleet()) {
    const double err = std::abs(static_cast<double>(d.Accumulate(xs)) - exact);
    EXPECT_LE(err, envelope) << d.name;
  }
}

TEST(DeviceTest, DotMatchesAccumulateOfProducts) {
  // For a profile without FMA, Dot must equal Accumulate over rounded products.
  const auto a = RandomVector(1000, 1);
  const auto b = RandomVector(1000, 2);
  const DeviceProfile& rtx4090 = DeviceRegistry::ByName("RTX4090");
  ASSERT_FALSE(rtx4090.fma);
  std::vector<float> prods(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    prods[i] = a[i] * b[i];
  }
  EXPECT_EQ(rtx4090.Dot(a, b), rtx4090.Accumulate(prods));
}

TEST(DeviceTest, DotStridedMatchesContiguous) {
  const auto a = RandomVector(256, 5);
  const auto b = RandomVector(256, 6);
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_EQ(d.Dot(a, b), d.DotStrided(a.data(), 1, b.data(), 1, 256)) << d.name;
  }
}

TEST(DeviceTest, FmaChangesRounding) {
  DeviceProfile with_fma = DeviceRegistry::Reference();
  with_fma.fma = true;
  const DeviceProfile& without = DeviceRegistry::Reference();
  const auto a = RandomVector(1 << 14, 21);
  const auto b = RandomVector(1 << 14, 22);
  EXPECT_NE(with_fma.Dot(a, b), without.Dot(a, b));
}

TEST(DeviceTest, IntrinsicFlavorsAgreeToOneUlp) {
  DeviceProfile native = DeviceRegistry::Reference();
  native.intrinsics = IntrinsicFlavor::kFloatNative;
  DeviceProfile rounded = DeviceRegistry::Reference();
  rounded.intrinsics = IntrinsicFlavor::kDoubleRounded;
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.NextUniform(-10.0, 10.0));
    const float e1 = native.Exp(x);
    const float e2 = rounded.Exp(x);
    // At most a few ulps apart.
    const float ulp = std::abs(std::nextafterf(e2, INFINITY) - e2);
    EXPECT_LE(std::abs(e1 - e2), 4.0f * ulp) << "x=" << x;
  }
}

TEST(DeviceTest, SqrtCorrectlyRoundedOnBothFlavors) {
  Rng rng(33);
  for (const auto& d : DeviceRegistry::Fleet()) {
    for (int i = 0; i < 1000; ++i) {
      const float x = static_cast<float>(rng.NextUniform(0.0, 100.0));
      EXPECT_EQ(d.Sqrt(x), std::sqrt(x));
    }
  }
}

TEST(DeviceTest, EmptyAccumulateIsZero) {
  const std::vector<float> empty;
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_EQ(d.Accumulate(empty), 0.0f);
  }
}

class AccumOrderTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AccumOrderTest, AllOrdersWithinEnvelopeAcrossSizes) {
  const size_t n = GetParam();
  const auto xs = RandomVector(n, 9000 + n);
  double exact = 0.0;
  double abs_sum = 0.0;
  for (const float x : xs) {
    exact += static_cast<double>(x);
    abs_sum += std::abs(static_cast<double>(x));
  }
  const double gamma = (static_cast<double>(n) * kUnitRoundoff) /
                       (1.0 - static_cast<double>(n) * kUnitRoundoff);
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_LE(std::abs(static_cast<double>(d.Accumulate(xs)) - exact), gamma * abs_sum)
        << d.name << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AccumOrderTest,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 63, 64, 65, 127, 1000, 4096));

}  // namespace
}  // namespace tao
