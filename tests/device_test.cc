// Tests for the simulated accelerator fleet: reduction orderings must agree to within
// IEEE-754 reassociation error, genuinely differ bitwise on hard inputs, and be
// deterministic per profile. The SIMD backend (src/device/simd.h) additionally must
// be BITWISE identical to the scalar fixed-tree loops — commitments hash exact FP32
// values, so "close" is not good enough; every equality below is on bit patterns.

#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/device/device.h"
#include "src/device/simd.h"
#include "src/device/vmath.h"
#include "src/util/rng.h"

namespace tao {
namespace {

constexpr double kUnitRoundoff = 0x1.0p-24;

std::vector<float> RandomVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) {
    x = static_cast<float>(rng.NextGaussian());
  }
  return v;
}

TEST(DeviceTest, FleetHasFourDistinctDevices) {
  const auto& fleet = DeviceRegistry::Fleet();
  ASSERT_EQ(fleet.size(), 4u);
  for (size_t i = 0; i < fleet.size(); ++i) {
    for (size_t j = i + 1; j < fleet.size(); ++j) {
      EXPECT_NE(fleet[i].name, fleet[j].name);
    }
  }
}

TEST(DeviceTest, ByNameFindsAllDevices) {
  EXPECT_EQ(DeviceRegistry::ByName("reference").name, "reference");
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_EQ(DeviceRegistry::ByName(d.name).name, d.name);
  }
}

TEST(DeviceTest, AccumulateExactForSmallIntegers) {
  // Integer-valued sums below 2^24 are exact in FP32 regardless of order.
  const std::vector<float> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_EQ(d.Accumulate(xs), 55.0f) << d.name;
  }
  EXPECT_EQ(DeviceRegistry::Reference().Accumulate(xs), 55.0f);
}

TEST(DeviceTest, OrderingsProduceDifferentRoundings) {
  // With 64k random normals, distinct association orders round differently with
  // overwhelming probability.
  const auto xs = RandomVector(1 << 16, 42);
  const float ref = DeviceRegistry::Reference().Accumulate(xs);
  int differing = 0;
  for (const auto& d : DeviceRegistry::Fleet()) {
    if (d.Accumulate(xs) != ref) {
      ++differing;
    }
  }
  EXPECT_GE(differing, 3) << "fleet should be numerically heterogeneous";
}

TEST(DeviceTest, AccumulateDeterministicPerProfile) {
  const auto xs = RandomVector(4097, 7);
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_EQ(d.Accumulate(xs), d.Accumulate(xs)) << d.name;
  }
}

TEST(DeviceTest, CrossDeviceDeviationWithinTheoreticalEnvelope) {
  // |sum_d - sum_exact| <= gamma_{n-1} * sum |x_i| for every association order
  // (Higham 2002, Sec. 4.2 — reassociation only changes which gamma applies, and
  // gamma_{n-1} covers every order).
  const size_t n = 2048;
  const auto xs = RandomVector(n, 1234);
  double exact = 0.0;
  double abs_sum = 0.0;
  for (const float x : xs) {
    exact += static_cast<double>(x);
    abs_sum += std::abs(static_cast<double>(x));
  }
  const double gamma = (static_cast<double>(n - 1) * kUnitRoundoff) /
                       (1.0 - static_cast<double>(n - 1) * kUnitRoundoff);
  const double envelope = gamma * abs_sum;
  for (const auto& d : DeviceRegistry::Fleet()) {
    const double err = std::abs(static_cast<double>(d.Accumulate(xs)) - exact);
    EXPECT_LE(err, envelope) << d.name;
  }
}

TEST(DeviceTest, DotMatchesAccumulateOfProducts) {
  // For a profile without FMA, Dot must equal Accumulate over rounded products.
  const auto a = RandomVector(1000, 1);
  const auto b = RandomVector(1000, 2);
  const DeviceProfile& rtx4090 = DeviceRegistry::ByName("RTX4090");
  ASSERT_FALSE(rtx4090.fma);
  std::vector<float> prods(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    prods[i] = a[i] * b[i];
  }
  EXPECT_EQ(rtx4090.Dot(a, b), rtx4090.Accumulate(prods));
}

TEST(DeviceTest, DotStridedMatchesContiguous) {
  const auto a = RandomVector(256, 5);
  const auto b = RandomVector(256, 6);
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_EQ(d.Dot(a, b), d.DotStrided(a.data(), 1, b.data(), 1, 256)) << d.name;
  }
}

TEST(DeviceTest, FmaChangesRounding) {
  DeviceProfile with_fma = DeviceRegistry::Reference();
  with_fma.fma = true;
  const DeviceProfile& without = DeviceRegistry::Reference();
  const auto a = RandomVector(1 << 14, 21);
  const auto b = RandomVector(1 << 14, 22);
  EXPECT_NE(with_fma.Dot(a, b), without.Dot(a, b));
}

TEST(DeviceTest, IntrinsicFlavorsBitwiseOnVmathTranscendentals) {
  // Exp/Tanh/Erf route through the fixed vmath polynomials on EVERY profile, so
  // the two intrinsic flavors must agree bitwise there — while Log (still
  // flavored libm) must keep genuinely diverging, or the flavor knob would be
  // dead and the cross-device calibration envelopes for log-bearing ops vacuous.
  DeviceProfile native = DeviceRegistry::Reference();
  native.intrinsics = IntrinsicFlavor::kFloatNative;
  DeviceProfile rounded = DeviceRegistry::Reference();
  rounded.intrinsics = IntrinsicFlavor::kDoubleRounded;
  Rng rng(31);
  bool log_diverged = false;
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.NextUniform(-10.0, 10.0));
    EXPECT_EQ(std::bit_cast<uint32_t>(native.Exp(x)),
              std::bit_cast<uint32_t>(rounded.Exp(x)))
        << "x=" << x;
    EXPECT_EQ(std::bit_cast<uint32_t>(native.Tanh(x)),
              std::bit_cast<uint32_t>(rounded.Tanh(x)))
        << "x=" << x;
    EXPECT_EQ(std::bit_cast<uint32_t>(native.Erf(x)),
              std::bit_cast<uint32_t>(rounded.Erf(x)))
        << "x=" << x;
    const float pos = std::abs(x) + 0.5f;
    log_diverged = log_diverged || native.Log(pos) != rounded.Log(pos);
  }
  EXPECT_TRUE(log_diverged);
}

TEST(DeviceTest, SqrtCorrectlyRoundedOnBothFlavors) {
  Rng rng(33);
  for (const auto& d : DeviceRegistry::Fleet()) {
    for (int i = 0; i < 1000; ++i) {
      const float x = static_cast<float>(rng.NextUniform(0.0, 100.0));
      EXPECT_EQ(d.Sqrt(x), std::sqrt(x));
    }
  }
}

TEST(DeviceTest, EmptyAccumulateIsZero) {
  const std::vector<float> empty;
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_EQ(d.Accumulate(empty), 0.0f);
  }
}

class AccumOrderTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AccumOrderTest, AllOrdersWithinEnvelopeAcrossSizes) {
  const size_t n = GetParam();
  const auto xs = RandomVector(n, 9000 + n);
  double exact = 0.0;
  double abs_sum = 0.0;
  for (const float x : xs) {
    exact += static_cast<double>(x);
    abs_sum += std::abs(static_cast<double>(x));
  }
  const double gamma = (static_cast<double>(n) * kUnitRoundoff) /
                       (1.0 - static_cast<double>(n) * kUnitRoundoff);
  for (const auto& d : DeviceRegistry::Fleet()) {
    EXPECT_LE(std::abs(static_cast<double>(d.Accumulate(xs)) - exact), gamma * abs_sum)
        << d.name << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AccumOrderTest,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 63, 64, 65, 127, 1000, 4096));

// ---------------------------------------------------------------------------------
// SIMD backend: bitwise equivalence with the scalar fixed-tree loops.
// ---------------------------------------------------------------------------------

// Bit-pattern equality: distinguishes -0 from +0 and treats identical NaNs as equal,
// which is the standard a hashed commitment actually imposes.
::testing::AssertionResult BitEq(float a, float b) {
  if (std::bit_cast<uint32_t>(a) == std::bit_cast<uint32_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << std::hexfloat << a << " (0x" << std::hex << std::bit_cast<uint32_t>(a)
         << ") vs " << std::hexfloat << b << " (0x" << std::hex
         << std::bit_cast<uint32_t>(b) << ")";
}

// Adversarial float mix: gaussians spiked with signed zeros, denormals, and
// magnitude cliffs, so tail handling and lane combines see the hard cases.
std::vector<float> HardVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.NextBounded(8)) {
      case 0:
        v[i] = (rng.NextU64() & 1) ? 0.0f : -0.0f;
        break;
      case 1:
        v[i] = 1e-40f * static_cast<float>(rng.NextGaussian());  // denormal range
        break;
      case 2:
        v[i] = 1e12f * static_cast<float>(rng.NextGaussian());
        break;
      default:
        v[i] = static_cast<float>(rng.NextGaussian());
    }
  }
  return v;
}

const std::vector<size_t>& SimdSizes() {
  // Crosses every tail length mod 8 plus the n <= 8 sequential-rule boundary.
  static const std::vector<size_t> kSizes = {0,  1,  2,   3,   7,    8,    9,   15,
                                             16, 17, 63,  64,  65,   100,  127, 128,
                                             129, 1000, 4095, 4096, 4097};
  return kSizes;
}

class SimdEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SimdBackendSupported(SimdBackend::kAvx2)) {
      GTEST_SKIP() << "AVX2 unavailable; scalar fallback is the only backend";
    }
  }
};

TEST_F(SimdEquivalenceTest, SumBitwiseAcrossSizesAndAlignments) {
  for (const size_t n : SimdSizes()) {
    // +9 so every offset below stays in bounds.
    const auto xs = HardVector(n + 9, 0x51d0 + n);
    for (const size_t offset : {size_t{0}, size_t{1}, size_t{3}, size_t{9}}) {
      float scalar_sum = 0.0f, simd_sum = 0.0f;
      {
        ScopedSimdBackend force(SimdBackend::kScalar);
        scalar_sum = simd::SumStrided8(xs.data() + offset, static_cast<int64_t>(n));
      }
      {
        ScopedSimdBackend force(SimdBackend::kAvx2);
        simd_sum = simd::SumStrided8(xs.data() + offset, static_cast<int64_t>(n));
      }
      EXPECT_TRUE(BitEq(scalar_sum, simd_sum)) << "n=" << n << " offset=" << offset;
    }
  }
}

TEST_F(SimdEquivalenceTest, DotBitwiseAcrossSizesStridesAndAlignments) {
  // Strides cover the matmul fast path (1,1), the fallback's column walk (1,n) which
  // exercises the gather kernel, and a doubly-strided case.
  const std::vector<std::pair<int64_t, int64_t>> strides = {{1, 1}, {1, 7}, {3, 1}, {2, 5}};
  for (const size_t n : SimdSizes()) {
    for (const auto& [sa, sb] : strides) {
      const auto a = HardVector(n * static_cast<size_t>(sa) + 9, 0xd07a + n);
      const auto b = HardVector(n * static_cast<size_t>(sb) + 9, 0xd07b + n);
      for (const size_t offset : {size_t{0}, size_t{1}}) {
        float scalar_dot = 0.0f, simd_dot = 0.0f;
        {
          ScopedSimdBackend force(SimdBackend::kScalar);
          scalar_dot = simd::DotStrided8(a.data() + offset, sa, b.data() + offset, sb,
                                         static_cast<int64_t>(n));
        }
        {
          ScopedSimdBackend force(SimdBackend::kAvx2);
          simd_dot = simd::DotStrided8(a.data() + offset, sa, b.data() + offset, sb,
                                       static_cast<int64_t>(n));
        }
        EXPECT_TRUE(BitEq(scalar_dot, simd_dot))
            << "n=" << n << " sa=" << sa << " sb=" << sb << " offset=" << offset;
      }
    }
  }
}

TEST_F(SimdEquivalenceTest, ElementwiseHelpersBitwise) {
  const size_t n = 1003;  // tail of 3 mod 8
  const auto a = HardVector(n, 0xe1e1);
  const auto b = HardVector(n, 0xe2e2);
  std::vector<float> scalar_out(n), simd_out(n);
  const auto check = [&](const char* what, const std::function<void(float*)>& run) {
    ScopedSimdBackend scalar(SimdBackend::kScalar);
    run(scalar_out.data());
    {
      ScopedSimdBackend avx2(SimdBackend::kAvx2);
      run(simd_out.data());
    }
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitEq(scalar_out[i], simd_out[i])) << what << " i=" << i;
    }
  };
  const int64_t sn = static_cast<int64_t>(n);
  check("add", [&](float* o) { simd::AddVec(a.data(), b.data(), o, sn); });
  check("sub", [&](float* o) { simd::SubVec(a.data(), b.data(), o, sn); });
  check("mul", [&](float* o) { simd::MulVec(a.data(), b.data(), o, sn); });
  check("div", [&](float* o) { simd::DivVec(a.data(), b.data(), o, sn); });
  check("relu", [&](float* o) { simd::Relu(a.data(), o, sn); });
  check("neg", [&](float* o) { simd::Neg(a.data(), o, sn); });
  check("norm_affine", [&](float* o) {
    simd::NormAffine(a.data(), 0.125f, 1.5f, b.data(), a.data(), o, sn);
  });
  check("center_square",
        [&](float* o) { simd::CenterSquare(a.data(), -0.25f, o, sn); });
}

TEST_F(SimdEquivalenceTest, RowMaxMatchesScalarFold) {
  for (const size_t n : SimdSizes()) {
    if (n == 0) {
      continue;  // RowMax requires a nonempty row (softmax rows are nonempty)
    }
    const auto xs = HardVector(n, 0x3a41 + n);
    float scalar_max = 0.0f, simd_max = 0.0f;
    {
      ScopedSimdBackend force(SimdBackend::kScalar);
      scalar_max = simd::RowMax(xs.data(), static_cast<int64_t>(n));
    }
    {
      ScopedSimdBackend force(SimdBackend::kAvx2);
      simd_max = simd::RowMax(xs.data(), static_cast<int64_t>(n));
    }
    // The vector fold may legitimately differ only in the sign of a zero maximum
    // (documented in simd.h; invisible through exp()). Everything else is bitwise.
    if (scalar_max == 0.0f && simd_max == 0.0f) {
      continue;
    }
    EXPECT_TRUE(BitEq(scalar_max, simd_max)) << "n=" << n;
  }
}

TEST(SimdProfileTest, StridedVectorIsBitwiseAliasOfStridedBlock8) {
  DeviceProfile strided = DeviceRegistry::Reference();
  strided.order = AccumulationOrder::kStrided;
  strided.block = 8;
  DeviceProfile vec = strided;
  vec.order = AccumulationOrder::kStridedVector;
  ASSERT_TRUE(strided.vector_eligible());
  ASSERT_TRUE(vec.vector_eligible());
  for (const size_t n : SimdSizes()) {
    const auto xs = HardVector(n, 0xa11a + n);
    const auto ys = HardVector(n, 0xa22a + n);
    EXPECT_TRUE(BitEq(strided.Accumulate(xs), vec.Accumulate(xs))) << "n=" << n;
    if (n > 0) {
      EXPECT_TRUE(BitEq(
          strided.DotStrided(xs.data(), 1, ys.data(), 1, static_cast<int64_t>(n)),
          vec.DotStrided(xs.data(), 1, ys.data(), 1, static_cast<int64_t>(n))))
          << "n=" << n;
    }
  }
}

TEST(SimdProfileTest, VectorPathEqualsScalarStridedSemantics) {
  // The dispatched vector-eligible path must reproduce the *profile semantics*
  // (kStrided block=8 staged products), not merely agree with itself: compare the
  // RTX6000 vector profile against a plain kStrided(8) profile forced scalar.
  const DeviceProfile& rtx6000 = DeviceRegistry::ByName("RTX6000");
  ASSERT_TRUE(rtx6000.vector_eligible());
  DeviceProfile pinned = rtx6000;
  pinned.order = AccumulationOrder::kStrided;
  pinned.block = 8;
  for (const size_t n : SimdSizes()) {
    const auto xs = HardVector(n, 0xbead + n);
    const auto ys = HardVector(n, 0xcead + n);
    float pinned_sum = 0.0f, pinned_dot = 0.0f;
    {
      ScopedSimdBackend force(SimdBackend::kScalar);
      pinned_sum = pinned.Accumulate(xs);
      pinned_dot = pinned.DotStrided(xs.data(), 1, ys.data(), 1,
                                     static_cast<int64_t>(n));
    }
    EXPECT_TRUE(BitEq(rtx6000.Accumulate(xs), pinned_sum)) << "n=" << n;
    EXPECT_TRUE(BitEq(rtx6000.DotStrided(xs.data(), 1, ys.data(), 1,
                                         static_cast<int64_t>(n)),
                      pinned_dot))
        << "n=" << n;
  }
}

TEST(SimdProfileTest, NonEligibleProfilesNeverTakeVectorPath) {
  // Sequential/tree/blocked orders cannot be reproduced by the 8-lane unit; their
  // results must be independent of the dispatch decision.
  for (const auto& d : DeviceRegistry::Fleet()) {
    if (d.vector_eligible()) {
      continue;
    }
    const auto xs = HardVector(1001, 0xf1ee);
    float scalar_sum = 0.0f;
    {
      ScopedSimdBackend force(SimdBackend::kScalar);
      scalar_sum = d.Accumulate(xs);
    }
    if (SimdBackendSupported(SimdBackend::kAvx2)) {
      ScopedSimdBackend force(SimdBackend::kAvx2);
      EXPECT_TRUE(BitEq(d.Accumulate(xs), scalar_sum)) << d.name;
    }
  }
}

TEST(SimdProfileTest, BackendNamesAndSupport) {
  EXPECT_STREQ(SimdBackendName(SimdBackend::kScalar), "scalar");
  EXPECT_STREQ(SimdBackendName(SimdBackend::kAvx2), "avx2");
  EXPECT_TRUE(SimdBackendSupported(SimdBackend::kScalar));
  // ActiveSimdBackend always resolves to something this host supports.
  EXPECT_TRUE(SimdBackendSupported(ActiveSimdBackend()));
}

TEST(FleetSignatureTest, StableUnderVectorRelabelOnly) {
  std::vector<DeviceProfile> fleet = DeviceRegistry::Fleet();
  const std::string sig = FleetSignature(fleet);
  // Relabelling kStridedVector back to kStrided(8) is arithmetic-neutral: the
  // signature must not move (published calibrations stay valid).
  for (DeviceProfile& d : fleet) {
    if (d.order == AccumulationOrder::kStridedVector) {
      d.order = AccumulationOrder::kStrided;
      d.block = 8;
    }
  }
  EXPECT_EQ(FleetSignature(fleet), sig);
  // Any arithmetic change must move it.
  fleet[0].fma = !fleet[0].fma;
  EXPECT_NE(FleetSignature(fleet), sig);
  fleet[0].fma = !fleet[0].fma;
  fleet[1].order = AccumulationOrder::kReversed;
  EXPECT_NE(FleetSignature(fleet), sig);
}


// ---------------------------------------------------------------------------------
// Vector transcendental math (src/device/vmath.h): the AVX2 bodies must be bitwise
// identical to the scalar recipe, tails must clamp monotonically, and every fleet
// profile must agree on these functions (they carry no ordering freedom).
// ---------------------------------------------------------------------------------

// Inputs that exercise every vmath code path: the active polynomial ranges, both
// blend seams, the clamp tails on both sides, denormals, signed zeros, infinities,
// and NaN. Scaled gaussians fill the rest.
std::vector<float> VmathHardVector(size_t n, uint64_t seed) {
  static const float kSpecials[] = {
      0.0f,        -0.0f,       INFINITY,     -INFINITY,    NAN,
      1e-40f,      -1e-40f,     1e-44f,       -1e-44f,  // denormals
      0.625f,      -0.625f,     1.0f,         -1.0f,    // tanh/erf seams
      4.0f,        -4.0f,       9.0f,         -9.0f,    // erf/tanh clamps
      -87.3365448f, 88.722839f, -87.34f,      88.73f,   // exp flush/overflow
      -100.0f,     100.0f,      3.40282347e38f, -3.40282347e38f};
  Rng rng(seed);
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextU64() % 4 == 0) {
      v[i] = kSpecials[rng.NextU64() % (sizeof(kSpecials) / sizeof(kSpecials[0]))];
    } else {
      v[i] = 4.0f * static_cast<float>(rng.NextGaussian());
    }
  }
  return v;
}

class VmathEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SimdBackendSupported(SimdBackend::kAvx2)) {
      GTEST_SKIP() << "AVX2 unavailable; scalar fallback is the only backend";
    }
  }
};

TEST_F(VmathEquivalenceTest, ArrayFunctionsBitwiseAcrossSizesAndAlignments) {
  struct Fn {
    const char* name;
    void (*fn)(const float*, float*, int64_t);
  };
  const Fn fns[] = {{"exp", &vmath::ExpVec},         {"tanh", &vmath::TanhVec},
                    {"erf", &vmath::ErfVec},         {"sigmoid", &vmath::SigmoidVec},
                    {"gelu", &vmath::GeluVec},       {"silu", &vmath::SiluVec}};
  for (const Fn& f : fns) {
    for (const size_t n : SimdSizes()) {
      const auto xs = VmathHardVector(n + 9, 0x7a0 + n);
      for (const size_t offset : {size_t{0}, size_t{1}, size_t{3}, size_t{9}}) {
        std::vector<float> scalar_out(n), simd_out(n);
        {
          ScopedSimdBackend force(SimdBackend::kScalar);
          f.fn(xs.data() + offset, scalar_out.data(), static_cast<int64_t>(n));
        }
        {
          ScopedSimdBackend force(SimdBackend::kAvx2);
          f.fn(xs.data() + offset, simd_out.data(), static_cast<int64_t>(n));
        }
        for (size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(BitEq(scalar_out[i], simd_out[i]))
              << f.name << " n=" << n << " offset=" << offset << " i=" << i
              << " x=" << xs[offset + i];
        }
      }
    }
  }
}

TEST_F(VmathEquivalenceTest, AvxPathMatchesScalarFunctions) {
  // The 8-wide body must equal the one-float recipe element for element (the
  // scalar functions are what the dispute game's reference semantics quote).
  const auto xs = VmathHardVector(4096, 0xeef);
  std::vector<float> out(xs.size());
  ScopedSimdBackend force(SimdBackend::kAvx2);
  vmath::ExpVec(xs.data(), out.data(), static_cast<int64_t>(xs.size()));
  for (size_t i = 0; i < xs.size(); ++i) {
    ASSERT_TRUE(BitEq(out[i], vmath::Exp(xs[i]))) << "x=" << xs[i];
  }
  vmath::GeluVec(xs.data(), out.data(), static_cast<int64_t>(xs.size()));
  for (size_t i = 0; i < xs.size(); ++i) {
    ASSERT_TRUE(BitEq(out[i], vmath::Gelu(xs[i]))) << "x=" << xs[i];
  }
}

TEST(VmathTest, TailsAndSpecials) {
  EXPECT_TRUE(BitEq(vmath::Exp(-INFINITY), 0.0f));
  EXPECT_TRUE(BitEq(vmath::Exp(INFINITY), INFINITY));
  EXPECT_TRUE(std::isnan(vmath::Exp(NAN)));
  EXPECT_TRUE(BitEq(vmath::Exp(-100.0f), 0.0f));  // documented denormal flush
  EXPECT_TRUE(BitEq(vmath::Exp(100.0f), INFINITY));
  EXPECT_TRUE(BitEq(vmath::Exp(0.0f), 1.0f));

  EXPECT_TRUE(BitEq(vmath::Tanh(0.0f), 0.0f));
  EXPECT_TRUE(BitEq(vmath::Tanh(-0.0f), -0.0f));  // sign of zero survives
  EXPECT_TRUE(BitEq(vmath::Tanh(50.0f), 1.0f));
  EXPECT_TRUE(BitEq(vmath::Tanh(-50.0f), -1.0f));
  EXPECT_TRUE(BitEq(vmath::Tanh(INFINITY), 1.0f));
  EXPECT_TRUE(BitEq(vmath::Tanh(-INFINITY), -1.0f));
  EXPECT_TRUE(std::isnan(vmath::Tanh(NAN)));

  EXPECT_TRUE(BitEq(vmath::Erf(0.0f), 0.0f));
  EXPECT_TRUE(BitEq(vmath::Erf(-0.0f), -0.0f));
  EXPECT_TRUE(BitEq(vmath::Erf(INFINITY), 1.0f));
  EXPECT_TRUE(BitEq(vmath::Erf(-INFINITY), -1.0f));
  EXPECT_TRUE(std::isnan(vmath::Erf(NAN)));

  EXPECT_TRUE(BitEq(vmath::Sigmoid(0.0f), 0.5f));
  EXPECT_TRUE(BitEq(vmath::Sigmoid(INFINITY), 1.0f));
  EXPECT_TRUE(BitEq(vmath::Sigmoid(-INFINITY), 0.0f));
}

TEST(VmathTest, ClampBoundariesAreMonotone) {
  // Stepping ulp by ulp across each clamp seam must never reverse direction —
  // a non-monotone seam would let an adversary place activations where scalar
  // reference checks and batched re-execution could disagree on "close" values.
  {
    // exp flush: descending through -87.3365448 must be non-increasing.
    float x = -87.33f;
    float prev = vmath::Exp(x);
    for (int i = 0; i < 2000; ++i) {
      x = std::nextafterf(x, -INFINITY);
      const float y = vmath::Exp(x);
      ASSERT_LE(y, prev) << "x=" << x;
      prev = y;
    }
    EXPECT_EQ(prev, 0.0f);  // ended inside the flush region
  }
  {
    // exp overflow: ascending through 88.722839 must be non-decreasing.
    float x = 88.71f;
    float prev = vmath::Exp(x);
    for (int i = 0; i < 4000; ++i) {
      x = std::nextafterf(x, INFINITY);
      const float y = vmath::Exp(x);
      ASSERT_GE(y, prev) << "x=" << x;
      prev = y;
    }
    EXPECT_EQ(prev, INFINITY);
  }
  {
    // tanh clamp at 9: ascending must be non-decreasing and land exactly on 1.
    float x = 8.999f;
    float prev = vmath::Tanh(x);
    for (int i = 0; i < 3000; ++i) {
      x = std::nextafterf(x, INFINITY);
      const float y = vmath::Tanh(x);
      ASSERT_GE(y, prev) << "x=" << x;
      prev = y;
    }
    EXPECT_EQ(prev, 1.0f);
  }
  {
    // erf clamp at 4: same, and A&S 7.1.26 evaluates to exactly 1.0f at the seam.
    float x = 3.9995f;
    float prev = vmath::Erf(x);
    for (int i = 0; i < 3000; ++i) {
      x = std::nextafterf(x, INFINITY);
      const float y = vmath::Erf(x);
      ASSERT_GE(y, prev) << "x=" << x;
      prev = y;
    }
    EXPECT_EQ(prev, 1.0f);
  }
}

TEST(VmathTest, AccuracyAgainstDoubleLibm) {
  // The stated ULP table (device.cc: exp 4, tanh 4, erf 8) must hold against
  // double-precision references across the supported range.
  Rng rng(0xacc2);
  const auto ulps = [](float got, double want) {
    const double w = want;
    const float wf = static_cast<float>(w);
    const float ulp = std::abs(std::nextafterf(wf, INFINITY) - wf);
    return ulp == 0.0f ? 0.0 : std::abs(static_cast<double>(got) - w) / ulp;
  };
  for (int i = 0; i < 20000; ++i) {
    const float xe = static_cast<float>(rng.NextUniform(-87.0, 88.0));
    EXPECT_LE(ulps(vmath::Exp(xe), std::exp(static_cast<double>(xe))), 4.0)
        << "x=" << xe;
    const float xt = static_cast<float>(rng.NextUniform(-10.0, 10.0));
    EXPECT_LE(ulps(vmath::Tanh(xt), std::tanh(static_cast<double>(xt))), 4.0)
        << "x=" << xt;
    EXPECT_LE(ulps(vmath::Erf(xt), std::erf(static_cast<double>(xt))), 8.0)
        << "x=" << xt;
  }
}

TEST(VmathTest, AllProfilesAgreeOnTranscendentals) {
  // Unlike reductions, these are elementwise with a pinned recipe: every profile
  // (any ordering, fma, intrinsic flavor) must return the same bits.
  const auto& fleet = DeviceRegistry::Fleet();
  Rng rng(0xfee7);
  for (int i = 0; i < 2000; ++i) {
    const float x = 6.0f * static_cast<float>(rng.NextGaussian());
    const float e = fleet[0].Exp(x);
    const float t = fleet[0].Tanh(x);
    const float r = fleet[0].Erf(x);
    for (size_t d = 1; d < fleet.size(); ++d) {
      ASSERT_TRUE(BitEq(fleet[d].Exp(x), e)) << fleet[d].name << " x=" << x;
      ASSERT_TRUE(BitEq(fleet[d].Tanh(x), t)) << fleet[d].name << " x=" << x;
      ASSERT_TRUE(BitEq(fleet[d].Erf(x), r)) << fleet[d].name << " x=" << x;
    }
  }
}

TEST(FleetSignatureTest, CarriesVmathVersionToken) {
  // Calibrations hash the arithmetic they were measured on; the vmath revision is
  // part of that arithmetic, so the signature must lead with its version token
  // (bumping kVmathVersion invalidates every published ThresholdSet).
  const std::string sig = FleetSignature(DeviceRegistry::Fleet());
  EXPECT_EQ(sig.rfind(std::string(vmath::kVmathVersion) + ";", 0), 0u) << sig;
}

}  // namespace
}  // namespace tao
