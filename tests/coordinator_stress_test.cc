// Coordinator concurrency stress: many threads drive full claim lifecycles —
// submit / finalize / challenge / partition / select / adjudicate — against ONE
// shared coordinator, interleaved arbitrarily by the scheduler. Invariants:
//
//   * ledger conservation — every bond is escrowed and later released, rewarded, or
//     burned, so proposer + challenger + treasury deltas sum to zero;
//   * soundness for the honest — claims whose flow never opened a dispute finalize,
//     and no clean-adjudicated claim ever slashes the proposer;
//   * per-claim gas — each claim's metered gas equals its action sequence's schedule
//     cost, and the global fold equals the sum over claims.
//
// The single-shard tests exercise the historical everything-on-one-lock layout; the
// cross-shard tests drive many threads against a sharded coordinator — both with
// threads pinned one-per-shard (whose per-shard state must then replay bitwise) and
// with every thread spraying submissions across ALL shards (arbitrary cross-shard
// interleavings). The test must pass under TSan (the CI tsan job runs it): every
// transition locks its shard's mutex, so no interleaving races.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/crypto/sha256.h"
#include "src/protocol/coordinator.h"

namespace tao {
namespace {

// Flows running concurrently advance the shared logical clock under each other's
// feet. Finalize flows therefore use a 1-tick challenge window (they advance the
// clock by exactly 1), while disputed claims get an effectively infinite window and
// round timeout so that no interleaving of other flows' advances can push them past
// a deadline. Total clock advancement over the test is bounded by the number of
// flow steps (~thousands), far below 2^60.
constexpr uint64_t kDisputeWindow = uint64_t{1} << 60;
constexpr uint64_t kFinalizeWindow = 1;

enum class FlowKind {
  kFinalize,       // honest claim, nobody watches: submit -> window -> finalize
  kDisputeGuilty,  // cheat caught: full dispute, proposer slashed
  kDisputeClean,   // spurious challenge: full dispute, challenger slashed
};

FlowKind KindFor(int thread_id, int claim_index) {
  switch ((thread_id + claim_index) % 3) {
    case 0:
      return FlowKind::kFinalize;
    case 1:
      return FlowKind::kDisputeGuilty;
    default:
      return FlowKind::kDisputeClean;
  }
}

constexpr int64_t kRounds = 3;       // dispute rounds per disputed claim
constexpr int64_t kChildren = 2;     // partition width
constexpr int64_t kProofsPerRound = 5;

// Runs one claim's full lifecycle; returns its id. `shard` homes the claim; time
// advances are per-claim (AdvanceTimeFor), so only the owning shard's clock moves —
// with the default single shard that is exactly the historical global clock.
ClaimId RunFlow(Coordinator& coordinator, int thread_id, int claim_index, FlowKind kind,
                uint64_t shard = 0) {
  const Digest c0 = Sha256::Hash("claim-" + std::to_string(thread_id) + "-" +
                                 std::to_string(claim_index));
  const ClaimId id = coordinator.SubmitCommitment(
      c0, kind == FlowKind::kFinalize ? kFinalizeWindow : kDisputeWindow,
      /*proposer_bond=*/10.0, shard);
  if (kind == FlowKind::kFinalize) {
    coordinator.AdvanceTimeFor(id, kFinalizeWindow);
    // Other flows only ever advance time further, so finalization cannot fail.
    EXPECT_EQ(coordinator.TryFinalize(id), ClaimState::kFinalized);
    return id;
  }
  coordinator.OpenChallenge(id, /*challenger_bond=*/2.0);
  const std::vector<Digest> child_hashes(static_cast<size_t>(kChildren), c0);
  for (int64_t round = 0; round < kRounds; ++round) {
    coordinator.RecordPartition(id, kChildren, child_hashes);
    coordinator.RecordMerkleCheck(id, kProofsPerRound);
    coordinator.RecordSelection(id, round % kChildren);
    coordinator.AdvanceTimeFor(id, 1);
  }
  coordinator.RecordLeafAdjudication(id, kind == FlowKind::kDisputeGuilty,
                                     /*challenger_share=*/0.5);
  return id;
}

int64_t ExpectedGas(const GasSchedule& schedule, FlowKind kind) {
  int64_t gas = schedule.commit;
  if (kind == FlowKind::kFinalize) {
    return gas;
  }
  gas += schedule.open_challenge;
  gas += kRounds * (schedule.PartitionCost(kChildren) + schedule.selection +
                    schedule.merkle_check * kProofsPerRound);
  gas += schedule.leaf_adjudication + schedule.settlement;
  return gas;
}

TEST(CoordinatorStressTest, ConcurrentClaimFlowsKeepLedgerAndGasConsistent) {
  constexpr int kThreads = 8;
  constexpr int kClaimsPerThread = 40;

  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/kDisputeWindow);
  std::vector<std::vector<ClaimId>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&coordinator, &ids, t] {
      ids[static_cast<size_t>(t)].reserve(kClaimsPerThread);
      for (int c = 0; c < kClaimsPerThread; ++c) {
        ids[static_cast<size_t>(t)].push_back(RunFlow(coordinator, t, c, KindFor(t, c)));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // Ledger conservation: balance deltas sum to zero net of burns (the treasury IS
  // the burn account, so the three-way sum closes exactly).
  const Balances balances = coordinator.balances();
  EXPECT_NEAR(balances.proposer + balances.challenger + balances.treasury, 0.0, 1e-9);
  EXPECT_GE(balances.treasury, 0.0);

  const GasSchedule schedule = coordinator.schedule();
  int64_t gas_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int c = 0; c < kClaimsPerThread; ++c) {
      const FlowKind kind = KindFor(t, c);
      const ClaimId id = ids[static_cast<size_t>(t)][static_cast<size_t>(c)];
      const ClaimRecord record = coordinator.claim(id);
      // No honest slash: finalize flows finalize, clean disputes slash the
      // challenger, and only guilty flows slash the proposer.
      switch (kind) {
        case FlowKind::kFinalize:
          EXPECT_EQ(record.state, ClaimState::kFinalized) << "claim " << id;
          break;
        case FlowKind::kDisputeGuilty:
          EXPECT_EQ(record.state, ClaimState::kProposerSlashed) << "claim " << id;
          break;
        case FlowKind::kDisputeClean:
          EXPECT_EQ(record.state, ClaimState::kChallengerSlashed) << "claim " << id;
          break;
      }
      EXPECT_EQ(record.gas, ExpectedGas(schedule, kind)) << "claim " << id;
      EXPECT_EQ(record.merkle_checks,
                kind == FlowKind::kFinalize ? 0 : kRounds * kProofsPerRound)
          << "claim " << id;
      gas_sum += record.gas;
    }
  }
  // Per-claim meters partition the global meter.
  EXPECT_EQ(coordinator.gas().total(), gas_sum);
}

// Concurrent submissions alone: ids are unique and dense, every bond is escrowed.
TEST(CoordinatorStressTest, ConcurrentSubmissionsAssignUniqueIds) {
  constexpr int kThreads = 8;
  constexpr int kClaimsPerThread = 100;
  Coordinator coordinator;
  std::vector<std::vector<ClaimId>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&coordinator, &ids, t] {
      for (int c = 0; c < kClaimsPerThread; ++c) {
        const Digest c0 = Sha256::Hash(std::to_string(t * kClaimsPerThread + c));
        ids[static_cast<size_t>(t)].push_back(
            coordinator.SubmitCommitment(c0, 100, 10.0));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  std::vector<char> seen(kThreads * kClaimsPerThread + 1, 0);
  for (const auto& thread_ids : ids) {
    for (const ClaimId id : thread_ids) {
      ASSERT_GE(id, 1u);
      ASSERT_LE(id, static_cast<ClaimId>(kThreads * kClaimsPerThread));
      EXPECT_EQ(seen[static_cast<size_t>(id)], 0) << "duplicate claim id " << id;
      seen[static_cast<size_t>(id)] = 1;
    }
  }
  const Balances balances = coordinator.balances();
  EXPECT_DOUBLE_EQ(balances.proposer, -10.0 * kThreads * kClaimsPerThread);
}

// One thread per shard, each driving full lifecycles against its own shard only.
// Afterwards every shard's ledger / gas / clock / claim records must be bitwise
// reproducible by replaying that thread's flow sequence alone on a fresh
// single-shard coordinator — shards share NO state, so what the other 7 threads did
// cannot leak in. This is the state-machine half of the service's per-shard-lane
// determinism contract, under real scheduler interleavings and TSan.
TEST(CoordinatorStressTest, PinnedShardFlowsReplayBitwisePerShard) {
  constexpr int kShards = 8;
  constexpr int kClaimsPerThread = 40;

  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/kDisputeWindow, kShards);
  std::vector<std::vector<ClaimId>> ids(kShards);
  std::vector<std::thread> threads;
  threads.reserve(kShards);
  for (int t = 0; t < kShards; ++t) {
    threads.emplace_back([&coordinator, &ids, t] {
      ids[static_cast<size_t>(t)].reserve(kClaimsPerThread);
      for (int c = 0; c < kClaimsPerThread; ++c) {
        ids[static_cast<size_t>(t)].push_back(
            RunFlow(coordinator, t, c, KindFor(t, c), static_cast<uint64_t>(t)));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  for (int t = 0; t < kShards; ++t) {
    // Replay thread t's exact flow sequence on a fresh single-shard coordinator.
    Coordinator replay(GasSchedule{}, /*round_timeout=*/kDisputeWindow);
    std::vector<ClaimId> replay_ids;
    for (int c = 0; c < kClaimsPerThread; ++c) {
      replay_ids.push_back(RunFlow(replay, t, c, KindFor(t, c)));
    }
    const Balances got = coordinator.shard_balances(static_cast<size_t>(t));
    const Balances want = replay.balances();
    EXPECT_EQ(got.proposer, want.proposer) << "shard " << t;
    EXPECT_EQ(got.challenger, want.challenger) << "shard " << t;
    EXPECT_EQ(got.treasury, want.treasury) << "shard " << t;
    EXPECT_EQ(coordinator.shard_gas(static_cast<size_t>(t)), replay.gas().total())
        << "shard " << t;
    EXPECT_EQ(coordinator.shard_now(static_cast<size_t>(t)), replay.now())
        << "shard " << t;
    for (int c = 0; c < kClaimsPerThread; ++c) {
      // Shard-local id layout: thread t's c-th claim is always 1 + t + c*S.
      const ClaimId id = ids[static_cast<size_t>(t)][static_cast<size_t>(c)];
      EXPECT_EQ(id, 1 + static_cast<ClaimId>(t) + static_cast<ClaimId>(c) * kShards);
      const ClaimRecord got_record = coordinator.claim(id);
      const ClaimRecord want_record =
          replay.claim(replay_ids[static_cast<size_t>(c)]);
      EXPECT_EQ(got_record.state, want_record.state) << "claim " << id;
      EXPECT_EQ(got_record.gas, want_record.gas) << "claim " << id;
      EXPECT_EQ(got_record.merkle_checks, want_record.merkle_checks) << "claim " << id;
    }
  }
}

// Every thread sprays flows across EVERY shard (arbitrary cross-shard
// interleavings — multiple threads contend on each shard lock). Determinism is out
// the window by design; conservation and per-claim attribution must survive.
TEST(CoordinatorStressTest, CrossShardInterleavingsKeepGlobalInvariants) {
  constexpr int kThreads = 8;
  constexpr int kShards = 4;
  constexpr int kClaimsPerThread = 40;

  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/kDisputeWindow, kShards);
  std::vector<std::vector<ClaimId>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&coordinator, &ids, t] {
      ids[static_cast<size_t>(t)].reserve(kClaimsPerThread);
      for (int c = 0; c < kClaimsPerThread; ++c) {
        // Stride shards per claim so every thread exercises every shard lock.
        ids[static_cast<size_t>(t)].push_back(RunFlow(
            coordinator, t, c, KindFor(t, c), static_cast<uint64_t>(t + c) % kShards));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // Ledger conservation, globally (fold) and per shard.
  const Balances balances = coordinator.balances();
  EXPECT_NEAR(balances.proposer + balances.challenger + balances.treasury, 0.0, 1e-9);
  for (int shard = 0; shard < kShards; ++shard) {
    const Balances per_shard = coordinator.shard_balances(static_cast<size_t>(shard));
    EXPECT_NEAR(per_shard.proposer + per_shard.challenger + per_shard.treasury, 0.0,
                1e-9)
        << "shard " << shard;
    EXPECT_GE(per_shard.treasury, 0.0) << "shard " << shard;
  }

  // Per-claim gas partitions each shard's meter, and the shard meters partition the
  // global fold.
  const GasSchedule schedule = coordinator.schedule();
  int64_t gas_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int c = 0; c < kClaimsPerThread; ++c) {
      const FlowKind kind = KindFor(t, c);
      const ClaimId id = ids[static_cast<size_t>(t)][static_cast<size_t>(c)];
      const ClaimRecord record = coordinator.claim(id);
      EXPECT_EQ(record.gas, ExpectedGas(schedule, kind)) << "claim " << id;
      gas_sum += record.gas;
    }
  }
  int64_t shard_gas_sum = 0;
  for (int shard = 0; shard < kShards; ++shard) {
    shard_gas_sum += coordinator.shard_gas(static_cast<size_t>(shard));
  }
  EXPECT_EQ(coordinator.gas().total(), gas_sum);
  EXPECT_EQ(shard_gas_sum, gas_sum);
}

}  // namespace
}  // namespace tao
