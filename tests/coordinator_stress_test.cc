// Coordinator concurrency stress: many threads drive full claim lifecycles —
// submit / finalize / challenge / partition / select / adjudicate — against ONE
// shared coordinator, interleaved arbitrarily by the scheduler. Invariants:
//
//   * ledger conservation — every bond is escrowed and later released, rewarded, or
//     burned, so proposer + challenger + treasury deltas sum to zero;
//   * soundness for the honest — claims whose flow never opened a dispute finalize,
//     and no clean-adjudicated claim ever slashes the proposer;
//   * per-claim gas — each claim's metered gas equals its action sequence's schedule
//     cost, and the global meter equals the sum over claims.
//
// The test must pass under TSan (the CI tsan job runs it): every transition locks
// the coordinator mutex and the gas meter is atomic, so no interleaving races.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/crypto/sha256.h"
#include "src/protocol/coordinator.h"

namespace tao {
namespace {

// Flows running concurrently advance the shared logical clock under each other's
// feet. Finalize flows therefore use a 1-tick challenge window (they advance the
// clock by exactly 1), while disputed claims get an effectively infinite window and
// round timeout so that no interleaving of other flows' advances can push them past
// a deadline. Total clock advancement over the test is bounded by the number of
// flow steps (~thousands), far below 2^60.
constexpr uint64_t kDisputeWindow = uint64_t{1} << 60;
constexpr uint64_t kFinalizeWindow = 1;

enum class FlowKind {
  kFinalize,       // honest claim, nobody watches: submit -> window -> finalize
  kDisputeGuilty,  // cheat caught: full dispute, proposer slashed
  kDisputeClean,   // spurious challenge: full dispute, challenger slashed
};

FlowKind KindFor(int thread_id, int claim_index) {
  switch ((thread_id + claim_index) % 3) {
    case 0:
      return FlowKind::kFinalize;
    case 1:
      return FlowKind::kDisputeGuilty;
    default:
      return FlowKind::kDisputeClean;
  }
}

constexpr int64_t kRounds = 3;       // dispute rounds per disputed claim
constexpr int64_t kChildren = 2;     // partition width
constexpr int64_t kProofsPerRound = 5;

// Runs one claim's full lifecycle; returns its id.
ClaimId RunFlow(Coordinator& coordinator, int thread_id, int claim_index, FlowKind kind) {
  const Digest c0 = Sha256::Hash("claim-" + std::to_string(thread_id) + "-" +
                                 std::to_string(claim_index));
  const ClaimId id = coordinator.SubmitCommitment(
      c0, kind == FlowKind::kFinalize ? kFinalizeWindow : kDisputeWindow,
      /*proposer_bond=*/10.0);
  if (kind == FlowKind::kFinalize) {
    coordinator.AdvanceTime(kFinalizeWindow);
    // Other flows only ever advance time further, so finalization cannot fail.
    EXPECT_EQ(coordinator.TryFinalize(id), ClaimState::kFinalized);
    return id;
  }
  coordinator.OpenChallenge(id, /*challenger_bond=*/2.0);
  const std::vector<Digest> child_hashes(static_cast<size_t>(kChildren), c0);
  for (int64_t round = 0; round < kRounds; ++round) {
    coordinator.RecordPartition(id, kChildren, child_hashes);
    coordinator.RecordMerkleCheck(id, kProofsPerRound);
    coordinator.RecordSelection(id, round % kChildren);
    coordinator.AdvanceTime(1);
  }
  coordinator.RecordLeafAdjudication(id, kind == FlowKind::kDisputeGuilty,
                                     /*challenger_share=*/0.5);
  return id;
}

int64_t ExpectedGas(const GasSchedule& schedule, FlowKind kind) {
  int64_t gas = schedule.commit;
  if (kind == FlowKind::kFinalize) {
    return gas;
  }
  gas += schedule.open_challenge;
  gas += kRounds * (schedule.PartitionCost(kChildren) + schedule.selection +
                    schedule.merkle_check * kProofsPerRound);
  gas += schedule.leaf_adjudication + schedule.settlement;
  return gas;
}

TEST(CoordinatorStressTest, ConcurrentClaimFlowsKeepLedgerAndGasConsistent) {
  constexpr int kThreads = 8;
  constexpr int kClaimsPerThread = 40;

  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/kDisputeWindow);
  std::vector<std::vector<ClaimId>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&coordinator, &ids, t] {
      ids[static_cast<size_t>(t)].reserve(kClaimsPerThread);
      for (int c = 0; c < kClaimsPerThread; ++c) {
        ids[static_cast<size_t>(t)].push_back(RunFlow(coordinator, t, c, KindFor(t, c)));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // Ledger conservation: balance deltas sum to zero net of burns (the treasury IS
  // the burn account, so the three-way sum closes exactly).
  const Balances balances = coordinator.balances();
  EXPECT_NEAR(balances.proposer + balances.challenger + balances.treasury, 0.0, 1e-9);
  EXPECT_GE(balances.treasury, 0.0);

  const GasSchedule schedule = coordinator.schedule();
  int64_t gas_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int c = 0; c < kClaimsPerThread; ++c) {
      const FlowKind kind = KindFor(t, c);
      const ClaimId id = ids[static_cast<size_t>(t)][static_cast<size_t>(c)];
      const ClaimRecord record = coordinator.claim(id);
      // No honest slash: finalize flows finalize, clean disputes slash the
      // challenger, and only guilty flows slash the proposer.
      switch (kind) {
        case FlowKind::kFinalize:
          EXPECT_EQ(record.state, ClaimState::kFinalized) << "claim " << id;
          break;
        case FlowKind::kDisputeGuilty:
          EXPECT_EQ(record.state, ClaimState::kProposerSlashed) << "claim " << id;
          break;
        case FlowKind::kDisputeClean:
          EXPECT_EQ(record.state, ClaimState::kChallengerSlashed) << "claim " << id;
          break;
      }
      EXPECT_EQ(record.gas, ExpectedGas(schedule, kind)) << "claim " << id;
      EXPECT_EQ(record.merkle_checks,
                kind == FlowKind::kFinalize ? 0 : kRounds * kProofsPerRound)
          << "claim " << id;
      gas_sum += record.gas;
    }
  }
  // Per-claim meters partition the global meter.
  EXPECT_EQ(coordinator.gas().total(), gas_sum);
}

// Concurrent submissions alone: ids are unique and dense, every bond is escrowed.
TEST(CoordinatorStressTest, ConcurrentSubmissionsAssignUniqueIds) {
  constexpr int kThreads = 8;
  constexpr int kClaimsPerThread = 100;
  Coordinator coordinator;
  std::vector<std::vector<ClaimId>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&coordinator, &ids, t] {
      for (int c = 0; c < kClaimsPerThread; ++c) {
        const Digest c0 = Sha256::Hash(std::to_string(t * kClaimsPerThread + c));
        ids[static_cast<size_t>(t)].push_back(
            coordinator.SubmitCommitment(c0, 100, 10.0));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  std::vector<char> seen(kThreads * kClaimsPerThread + 1, 0);
  for (const auto& thread_ids : ids) {
    for (const ClaimId id : thread_ids) {
      ASSERT_GE(id, 1u);
      ASSERT_LE(id, static_cast<ClaimId>(kThreads * kClaimsPerThread));
      EXPECT_EQ(seen[static_cast<size_t>(id)], 0) << "duplicate claim id " << id;
      seen[static_cast<size_t>(id)] = 1;
    }
  }
  const Balances balances = coordinator.balances();
  EXPECT_DOUBLE_EQ(balances.proposer, -10.0 * kThreads * kClaimsPerThread);
}

}  // namespace
}  // namespace tao
