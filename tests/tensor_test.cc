// Unit tests for Shape and Tensor.

#include <gtest/gtest.h>

#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"

namespace tao {
namespace {

TEST(ShapeTest, NumelAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
}

TEST(ShapeTest, ScalarShape) {
  const Shape s{};
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, StridesRowMajor) {
  const Shape s{2, 3, 4};
  const auto strides = s.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, LinearizeDelinearizeRoundTrip) {
  const Shape s{3, 5, 7};
  for (int64_t off = 0; off < s.numel(); ++off) {
    const auto index = s.Delinearize(off);
    EXPECT_EQ(s.Linearize(index), off);
  }
}

TEST(ShapeTest, EqualityAndToString) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).ToString(), "[2, 3]");
}

TEST(TensorTest, ZerosAndFill) {
  Tensor t = Tensor::Zeros(Shape{2, 2});
  for (const float v : t.values()) {
    EXPECT_EQ(v, 0.0f);
  }
  t.Fill(3.0f);
  for (const float v : t.values()) {
    EXPECT_EQ(v, 3.0f);
  }
}

TEST(TensorTest, SharedStorageOnCopyDeepOnClone) {
  Tensor a = Tensor::Full(Shape{4}, 1.0f);
  Tensor b = a;           // shares storage
  Tensor c = a.Clone();   // deep copy
  EXPECT_TRUE(a.SameStorageAs(b));
  EXPECT_FALSE(a.SameStorageAs(c));
  b.mutable_values()[0] = 9.0f;
  EXPECT_EQ(a[0], 9.0f);
  EXPECT_EQ(c[0], 1.0f);
}

TEST(TensorTest, RandnIsSeededDeterministic) {
  Rng rng1(123);
  Rng rng2(123);
  const Tensor a = Tensor::Randn(Shape{32}, rng1);
  const Tensor b = Tensor::Randn(Shape{32}, rng2);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(TensorTest, WithShapeSharesStorage) {
  Tensor a = Tensor::Arange(6);
  const Tensor b = a.WithShape(Shape{2, 3});
  EXPECT_TRUE(a.SameStorageAs(b));
  EXPECT_EQ(b.shape(), Shape({2, 3}));
  EXPECT_EQ(b.at(std::vector<int64_t>{1, 2}), 5.0f);
}

TEST(TensorTest, CastToDouble) {
  const Tensor a = Tensor::Arange(3);
  const DTensor d = a.Cast<double>();
  EXPECT_DOUBLE_EQ(d[2], 2.0);
}

TEST(TensorTest, MaxAbsDiffAndErrors) {
  Tensor a = Tensor::Full(Shape{3}, 1.0f);
  Tensor b = a.Clone();
  b.mutable_values()[1] = 1.5f;
  EXPECT_FLOAT_EQ(static_cast<float>(MaxAbsDiff(a, b)), 0.5f);
  const auto abs_err = AbsErrors(a, b);
  EXPECT_DOUBLE_EQ(abs_err[0], 0.0);
  EXPECT_DOUBLE_EQ(abs_err[1], 0.5);
  const auto rel_err = RelErrors(a, b);
  EXPECT_NEAR(rel_err[1], 0.5, 1e-9);
}

TEST(TensorTest, UniformWithinRange) {
  Rng rng(77);
  const Tensor t = Tensor::Uniform(Shape{1000}, rng, -2.0f, 2.0f);
  for (const float v : t.values()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 2.0f);
  }
}

}  // namespace
}  // namespace tao
