// Verification-service suite: admission control and backpressure (including the
// p99-latency SLO shedding gate), per-submitter fairness, adaptive batch-former
// policy, graceful drain, live-metrics consistency, and the service determinism
// invariant — for a fixed submission order on a single-shard coordinator, verdicts,
// per-claim gas, C0 digests, claim ids, and the coordinator ledger are bitwise
// identical to the sequential PR-1 path, for any worker count and any batch sizing.
// (The multi-shard sweep and per-shard replay equivalence live in
// coordinator_shard_test.cc.) The whole suite must run TSan-clean (CI runs it in
// the tsan job).

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/service/verification_service.h"
#include "tests/test_claims.h"

namespace tao {
namespace {

// ------------------------------- SubmissionQueue ------------------------------------

SubmissionRecord MakeRecord(uint64_t submitter = 0) {
  SubmissionRecord record;
  record.submitter = submitter;
  return record;
}

TEST(SubmissionQueueTest, RejectPolicyBoundsDepthAndPreservesFifoOrder) {
  SubmissionQueue queue(3, AdmissionPolicy::kReject);
  EXPECT_EQ(queue.Push(MakeRecord()), SubmitStatus::kAccepted);
  EXPECT_EQ(queue.Push(MakeRecord()), SubmitStatus::kAccepted);
  EXPECT_EQ(queue.Push(MakeRecord()), SubmitStatus::kAccepted);
  EXPECT_EQ(queue.Push(MakeRecord()), SubmitStatus::kRejectedFull);
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.accepted(), 3u);

  std::vector<SubmissionRecord> popped = queue.PopUpTo(2);
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_EQ(popped[0].sequence, 0u);
  EXPECT_EQ(popped[1].sequence, 1u);
  EXPECT_EQ(queue.depth(), 1u);

  // A rejected push consumed no sequence number.
  EXPECT_EQ(queue.Push(MakeRecord()), SubmitStatus::kAccepted);
  popped = queue.PopUpTo(8);
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_EQ(popped[0].sequence, 2u);
  EXPECT_EQ(popped[1].sequence, 3u);
  EXPECT_EQ(queue.peak_depth(), 3u);
}

TEST(SubmissionQueueTest, PerSubmitterCapKeepsOneFloodFromStarvingOthers) {
  SubmissionQueue queue(8, AdmissionPolicy::kReject, /*per_submitter_cap=*/2);
  EXPECT_EQ(queue.Push(MakeRecord(1)), SubmitStatus::kAccepted);
  EXPECT_EQ(queue.Push(MakeRecord(1)), SubmitStatus::kAccepted);
  // Submitter 1 is at its fair share; the queue still has room for submitter 2.
  EXPECT_EQ(queue.Push(MakeRecord(1)), SubmitStatus::kRejectedFull);
  EXPECT_EQ(queue.Push(MakeRecord(2)), SubmitStatus::kAccepted);
  EXPECT_EQ(queue.Push(MakeRecord(2)), SubmitStatus::kAccepted);
  EXPECT_EQ(queue.Push(MakeRecord(2)), SubmitStatus::kRejectedFull);

  // Draining submitter 1's oldest entry frees its share again.
  const std::vector<SubmissionRecord> popped = queue.PopUpTo(1);
  ASSERT_EQ(popped.size(), 1u);
  EXPECT_EQ(popped[0].submitter, 1u);
  EXPECT_EQ(queue.Push(MakeRecord(1)), SubmitStatus::kAccepted);
}

TEST(SubmissionQueueTest, BlockingPushWaitsForRoomAndCloseWakesEveryone) {
  SubmissionQueue queue(1, AdmissionPolicy::kBlock);
  EXPECT_EQ(queue.Push(MakeRecord()), SubmitStatus::kAccepted);

  std::atomic<int> accepted{0};
  std::thread pusher([&] {
    if (queue.Push(MakeRecord()) == SubmitStatus::kAccepted) {
      accepted.fetch_add(1);
    }
  });
  // The pusher can only complete once this pop makes room (or it had room already —
  // either interleaving must end with the push accepted).
  while (queue.accepted() < 1) {
  }
  std::vector<SubmissionRecord> popped = queue.PopUpTo(1);
  ASSERT_EQ(popped.size(), 1u);
  pusher.join();
  EXPECT_EQ(accepted.load(), 1);
  EXPECT_EQ(queue.accepted(), 2u);

  // Close: a pusher blocked on a full queue must wake with kRejectedClosed.
  std::atomic<int> closed_status{-1};
  std::thread blocked([&] {
    closed_status.store(static_cast<int>(queue.Push(MakeRecord())));
  });
  queue.Close();
  blocked.join();
  EXPECT_EQ(closed_status.load(), static_cast<int>(SubmitStatus::kRejectedClosed));

  // The closed queue still drains, then reports emptiness forever.
  popped = queue.PopUpTo(4);
  ASSERT_EQ(popped.size(), 1u);
  EXPECT_TRUE(queue.PopUpTo(4).empty());
}

// --------------------------------- BatchFormer --------------------------------------

TEST(BatchFormerTest, HintCapsBeforeFirstObservation) {
  BatchFormerOptions options;
  options.initial_hint = 8;
  options.min_batch = 1;
  options.max_batch = 64;
  BatchFormer former(options);
  EXPECT_EQ(former.per_claim_bytes_estimate(), 0);
  EXPECT_EQ(former.NextBatchSize(/*queue_depth=*/0, /*in_flight=*/0), 1);
  EXPECT_EQ(former.NextBatchSize(3, 0), 3);   // shallow queue: don't wait to fill a bus
  EXPECT_EQ(former.NextBatchSize(100, 0), 8); // deep queue: capped by the hint only
}

TEST(BatchFormerTest, MemoryBudgetReplacesHintAfterObservations) {
  BatchFormerOptions options;
  options.initial_hint = 2;
  options.max_batch = 64;
  options.memory_budget_bytes = 4000;
  BatchFormer former(options);
  former.ObserveBatch(/*batch_size=*/4, /*peak_bytes=*/4000);  // 1000 bytes/claim
  EXPECT_EQ(former.per_claim_bytes_estimate(), 1000);
  // The hint no longer caps; the learned memory cap does: 4000/1000 = 4 claims.
  EXPECT_EQ(former.NextBatchSize(100, 0), 4);
  // Claims already in flight consume budget.
  EXPECT_EQ(former.NextBatchSize(100, /*in_flight=*/2), 2);
  // Exhausted budget still makes progress at min_batch.
  EXPECT_EQ(former.NextBatchSize(100, 1000), options.min_batch);
}

TEST(BatchFormerTest, ClampsToMaxBatchAndIgnoresEmptyObservations) {
  BatchFormerOptions options;
  options.initial_hint = 0;  // no pre-observation cap
  options.max_batch = 16;
  BatchFormer former(options);
  EXPECT_EQ(former.NextBatchSize(1000, 0), 16);
  former.ObserveBatch(4, 0);  // no arena ran: must not poison the estimate
  EXPECT_EQ(former.per_claim_bytes_estimate(), 0);
  former.ObserveBatch(4, 4);  // 1 byte/claim: budget effectively unbounded
  EXPECT_EQ(former.NextBatchSize(1000, 0), 16);
}

// ----------------------------- VerificationService ----------------------------------

class ServiceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new Model(BuildBertMini());
    CalibrateOptions options;
    options.num_samples = 4;
    thresholds_ = new ThresholdSet(
        Calibrate(*model_, DeviceRegistry::Fleet(), options).MakeThresholds(3.0));
    commitment_ = new ModelCommitment(*model_->graph, *thresholds_);
  }

  static void TearDownTestSuite() {
    delete commitment_;
    delete thresholds_;
    delete model_;
    commitment_ = nullptr;
    thresholds_ = nullptr;
    model_ = nullptr;
  }

  static Model* model_;
  static ThresholdSet* thresholds_;
  static ModelCommitment* commitment_;
};

Model* ServiceFixture::model_ = nullptr;
ThresholdSet* ServiceFixture::thresholds_ = nullptr;
ModelCommitment* ServiceFixture::commitment_ = nullptr;

// Deterministic marketplace-style cohort (shared generator, this suite's mix).
std::vector<BatchClaim> MakeClaims(const Model& model, size_t count, uint64_t seed) {
  return MakeTestClaims(model, count, seed, /*cheat_rate=*/0.4,
                        /*supervised_rate=*/0.6);
}

// Reference outcome of one claim under the sequential PR-1 path.
struct ReferenceOutcome {
  ClaimId claim_id = 0;
  Digest c0{};
  bool flagged = false;
  bool proposer_guilty = false;
  ClaimState final_state = ClaimState::kCommitted;
  int64_t gas_used = 0;
};

// Replays `claims` one at a time, in order, against `coordinator` — the historical
// sequential path every service configuration must reproduce bitwise.
std::vector<ReferenceOutcome> RunSequentialReference(const Model& model,
                                                     const ModelCommitment& commitment,
                                                     const ThresholdSet& thresholds,
                                                     const std::vector<BatchClaim>& claims,
                                                     Coordinator& coordinator,
                                                     const DisputeOptions& options) {
  const Graph& graph = *model.graph;
  std::vector<ReferenceOutcome> outcomes;
  outcomes.reserve(claims.size());
  for (const BatchClaim& claim : claims) {
    ReferenceOutcome ref;
    if (claim.supervised()) {
      DisputeGame game(model, commitment, thresholds, coordinator, options);
      const DisputeResult result = game.Run(claim.inputs, *claim.proposer_device,
                                            *claim.verifier_device, claim.perturbations);
      ref.claim_id = result.claim_id;
      ref.c0 = coordinator.claim(result.claim_id).c0;
      ref.flagged = result.challenge_raised;
      ref.proposer_guilty = result.proposer_guilty;
      ref.final_state = result.final_state;
      ref.gas_used = result.gas_used;
    } else {
      const Executor exec(graph, *claim.proposer_device);
      const ExecutionTrace trace = exec.RunPerturbed(claim.inputs, claim.perturbations);
      ResultMeta meta;
      meta.device = claim.proposer_device->name;
      meta.challenge_window = options.challenge_window;
      ref.c0 = ComputeResultCommitment(commitment, claim.inputs,
                                       trace.value(graph.output()), meta);
      const ClaimId id = coordinator.SubmitCommitment(ref.c0, options.challenge_window,
                                                      options.proposer_bond);
      coordinator.AdvanceTime(options.challenge_window);
      ref.claim_id = id;
      ref.final_state = coordinator.TryFinalize(id);
      ref.gas_used = coordinator.claim_gas(id);
    }
    outcomes.push_back(ref);
  }
  return outcomes;
}

void ExpectOutcomeMatchesReference(const BatchClaimOutcome& got, const ReferenceOutcome& ref,
                                   size_t i, const std::string& label) {
  EXPECT_EQ(got.claim_id, ref.claim_id) << label << ": claim " << i;
  EXPECT_EQ(got.c0, ref.c0) << label << ": claim " << i << " C0 digest diverged";
  EXPECT_EQ(got.flagged, ref.flagged) << label << ": claim " << i;
  EXPECT_EQ(got.proposer_guilty, ref.proposer_guilty) << label << ": claim " << i;
  EXPECT_EQ(got.final_state, ref.final_state) << label << ": claim " << i;
  EXPECT_EQ(got.gas_used, ref.gas_used) << label << ": claim " << i;
}

TEST_F(ServiceFixture, FixedSubmissionOrderMatchesSequentialForAnyWorkersAndBatching) {
  const std::vector<BatchClaim> claims = MakeClaims(*model_, 10, 0x5e2f1);

  Coordinator reference_coordinator;
  const std::vector<ReferenceOutcome> reference = RunSequentialReference(
      *model_, *commitment_, *thresholds_, claims, reference_coordinator, DisputeOptions{});
  const Balances reference_balances = reference_coordinator.balances();
  const int64_t reference_gas = reference_coordinator.gas().total();
  int64_t flagged = 0;
  for (const ReferenceOutcome& ref : reference) {
    flagged += ref.flagged ? 1 : 0;
  }
  ASSERT_GT(flagged, 0);  // the cohort must exercise the dispute lane

  struct Variant {
    int workers;
    int threads;
    int64_t hint;
    int64_t budget;  // 0 = default
  };
  for (const Variant v : {Variant{1, 1, 1, 0}, Variant{2, 2, 4, 0},
                          Variant{3, 8, 64, /*starve the memory budget:*/ 1}}) {
    const std::string label = "workers=" + std::to_string(v.workers) +
                              " threads=" + std::to_string(v.threads) +
                              " hint=" + std::to_string(v.hint) +
                              " budget=" + std::to_string(v.budget);
    Coordinator coordinator;
    ServiceOptions options;
    options.num_workers = v.workers;
    options.queue_capacity = 4;  // force admission backpressure mid-run
    options.batching.initial_hint = v.hint;
    if (v.budget > 0) {
      options.batching.memory_budget_bytes = v.budget;
    }
    options.verifier.dispute.num_threads = v.threads;
    options.verifier.reuse_buffers = true;
    std::vector<std::shared_ptr<ClaimTicket>> tickets;
    {
      VerificationService service(*model_, *commitment_, *thresholds_, coordinator,
                                  options);
      for (const BatchClaim& claim : claims) {
        tickets.push_back(service.Submit(claim));
        ASSERT_NE(tickets.back(), nullptr) << label;
      }
      service.Drain();
    }
    for (size_t i = 0; i < tickets.size(); ++i) {
      EXPECT_TRUE(tickets[i]->done()) << label << ": claim " << i;
      EXPECT_EQ(tickets[i]->sequence(), i) << label;
      ExpectOutcomeMatchesReference(tickets[i]->Wait(), reference[i], i, label);
    }
    // In-order resolution reproduces the sequential ledger bitwise.
    const Balances balances = coordinator.balances();
    EXPECT_EQ(balances.proposer, reference_balances.proposer) << label;
    EXPECT_EQ(balances.challenger, reference_balances.challenger) << label;
    EXPECT_EQ(balances.treasury, reference_balances.treasury) << label;
    EXPECT_EQ(coordinator.gas().total(), reference_gas) << label;
  }
}

TEST_F(ServiceFixture, ConcurrentSubmittersAreDeterministicGivenTheAcceptedOrder) {
  constexpr size_t kSubmitters = 4;
  constexpr size_t kClaimsEach = 4;
  std::vector<std::vector<BatchClaim>> per_submitter;
  for (size_t s = 0; s < kSubmitters; ++s) {
    per_submitter.push_back(MakeClaims(*model_, kClaimsEach, 0xc0de00 + s));
  }

  Coordinator coordinator;
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 8;
  options.per_submitter_cap = 3;  // fairness active while all four threads push
  options.batching.initial_hint = 4;
  options.verifier.dispute.num_threads = 2;
  options.verifier.reuse_buffers = true;

  // ticket[s][i] for submitter s's i-th claim; tensors share storage with
  // per_submitter so the replay below uses the exact same claims.
  std::vector<std::vector<std::shared_ptr<ClaimTicket>>> tickets(kSubmitters);
  {
    VerificationService service(*model_, *commitment_, *thresholds_, coordinator,
                                options);
    std::vector<std::thread> submitters;
    for (size_t s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        for (const BatchClaim& claim : per_submitter[s]) {
          std::shared_ptr<ClaimTicket> ticket = service.Submit(claim, s);
          ASSERT_NE(ticket, nullptr);  // kBlock never rejects while open
          tickets[s].push_back(std::move(ticket));
        }
      });
    }
    for (std::thread& t : submitters) {
      t.join();
    }
    service.Drain();
  }

  // Reconstruct the accepted order from the tickets' sequence numbers, replay it
  // through the sequential path on a fresh coordinator, and demand bitwise equality
  // — the invariant is conditional only on the submission order, never on worker
  // interleaving or cohort boundaries.
  constexpr size_t kTotal = kSubmitters * kClaimsEach;
  std::vector<const BatchClaim*> ordered_claims(kTotal, nullptr);
  std::vector<const BatchClaimOutcome*> ordered_outcomes(kTotal, nullptr);
  for (size_t s = 0; s < kSubmitters; ++s) {
    for (size_t i = 0; i < kClaimsEach; ++i) {
      const uint64_t seq = tickets[s][i]->sequence();
      ASSERT_LT(seq, kTotal);
      ASSERT_EQ(ordered_claims[seq], nullptr) << "duplicate sequence " << seq;
      ordered_claims[seq] = &per_submitter[s][i];
      ordered_outcomes[seq] = &tickets[s][i]->Wait();
    }
  }
  std::vector<BatchClaim> replay;
  replay.reserve(kTotal);
  for (const BatchClaim* claim : ordered_claims) {
    replay.push_back(*claim);
  }
  Coordinator reference_coordinator;
  const std::vector<ReferenceOutcome> reference =
      RunSequentialReference(*model_, *commitment_, *thresholds_, replay,
                             reference_coordinator, DisputeOptions{});
  for (size_t seq = 0; seq < kTotal; ++seq) {
    ExpectOutcomeMatchesReference(*ordered_outcomes[seq], reference[seq], seq,
                                  "accepted-order replay");
  }
  const Balances balances = coordinator.balances();
  const Balances reference_balances = reference_coordinator.balances();
  EXPECT_EQ(balances.proposer, reference_balances.proposer);
  EXPECT_EQ(balances.challenger, reference_balances.challenger);
  EXPECT_EQ(balances.treasury, reference_balances.treasury);
  EXPECT_EQ(coordinator.gas().total(), reference_coordinator.gas().total());
}

TEST_F(ServiceFixture, GracefulDrainDeliversEveryAcceptedClaimAVerdict) {
  const std::vector<BatchClaim> claims = MakeClaims(*model_, 12, 0xd4a1f);
  Coordinator coordinator;
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 3;  // tiny: drain must flush queue + reorder buffer
  options.max_unresolved = 4;
  options.batching.initial_hint = 2;
  options.verifier.reuse_buffers = true;
  VerificationService service(*model_, *commitment_, *thresholds_, coordinator, options);

  std::vector<std::shared_ptr<ClaimTicket>> tickets;
  std::thread submitter([&] {
    for (const BatchClaim& claim : claims) {
      tickets.push_back(service.Submit(claim));
    }
  });
  submitter.join();
  service.Drain();

  ASSERT_EQ(tickets.size(), claims.size());
  for (size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_NE(tickets[i], nullptr) << "claim " << i;
    EXPECT_TRUE(tickets[i]->done()) << "drain returned before claim " << i << " resolved";
  }
  const MetricsSnapshot snapshot = service.metrics();
  EXPECT_EQ(snapshot.accepted, static_cast<int64_t>(claims.size()));
  EXPECT_EQ(snapshot.completed, static_cast<int64_t>(claims.size()));
  EXPECT_EQ(snapshot.queue_depth, 0);
  EXPECT_EQ(snapshot.claims_in_flight, 0);
  EXPECT_LE(snapshot.peak_queue_depth, 3);

  // Draining is terminal: later submissions are turned away, delivered work stays.
  EXPECT_EQ(service.Submit(claims[0]), nullptr);
  EXPECT_EQ(service.metrics().rejected, 1);
}

TEST_F(ServiceFixture, RejectPolicyShedsLoadButCompletesEveryAcceptedClaim) {
  const std::vector<BatchClaim> claims = MakeClaims(*model_, 16, 0x5aed);
  Coordinator coordinator;
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.admission = AdmissionPolicy::kReject;
  options.batching.initial_hint = 2;
  options.verifier.reuse_buffers = true;
  VerificationService service(*model_, *commitment_, *thresholds_, coordinator, options);

  std::vector<std::shared_ptr<ClaimTicket>> accepted;
  size_t rejected = 0;
  for (const BatchClaim& claim : claims) {
    std::shared_ptr<ClaimTicket> ticket = service.Submit(claim);
    if (ticket == nullptr) {
      ++rejected;
    } else {
      accepted.push_back(std::move(ticket));
    }
  }
  service.Drain();

  // Submitting 16 claims back-to-back into a 2-deep queue while each cohort takes
  // milliseconds to execute must shed load...
  EXPECT_GT(rejected, 0u);
  // ...and every accepted claim still gets exactly one verdict.
  for (size_t i = 0; i < accepted.size(); ++i) {
    EXPECT_TRUE(accepted[i]->done()) << "accepted claim " << i;
  }
  const MetricsSnapshot snapshot = service.metrics();
  EXPECT_EQ(snapshot.accepted, static_cast<int64_t>(accepted.size()));
  EXPECT_EQ(snapshot.rejected, static_cast<int64_t>(rejected));
  EXPECT_EQ(snapshot.submitted, static_cast<int64_t>(claims.size()));
  EXPECT_EQ(snapshot.completed, snapshot.accepted);
}

TEST_F(ServiceFixture, LatencySloShedsWhileBusyAndReleasesWhenIdle) {
  std::vector<BatchClaim> claims = MakeClaims(*model_, 6, 0x51c0);
  // Make the pipeline-occupying claim supervised so its execution (two lanes, and
  // a dispute if flagged) holds the service busy for many milliseconds — submits
  // racing it land microseconds later.
  claims[1].verifier_device = &DeviceRegistry::Fleet()[0];

  Coordinator coordinator;
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 16;  // plenty of room: only the SLO gate can reject
  options.latency_slo_ms = 1e-6;    // unreachable target: any real verdict busts it
  options.slo_min_observations = 1; // gate arms after the first verdict
  options.verifier.reuse_buffers = true;
  VerificationService service(*model_, *commitment_, *thresholds_, coordinator, options);

  // The gate stays open until a verdict exists: the first submission is admitted.
  std::shared_ptr<ClaimTicket> first = service.Submit(claims[0]);
  ASSERT_NE(first, nullptr);
  first->Wait();  // delivery precedes Wait() returning, so p99 is now observable

  // Idle service: p99 is over the (absurd) SLO, but nothing is in flight, so the
  // gate must NOT latch shut — the next submission is admitted.
  std::shared_ptr<ClaimTicket> busy = service.Submit(claims[1]);
  ASSERT_NE(busy, nullptr);

  // Now the service IS busy and p99 is over target: these are shed, with the
  // queue nearly empty — purely the latency target talking, not capacity.
  size_t shed = 0;
  std::vector<std::shared_ptr<ClaimTicket>> admitted;
  for (size_t i = 2; i < claims.size(); ++i) {
    std::shared_ptr<ClaimTicket> ticket = service.Submit(claims[i]);
    if (ticket == nullptr) {
      ++shed;
    } else {
      admitted.push_back(std::move(ticket));
    }
  }
  EXPECT_GE(shed, 1u);  // claims[1] takes ms to verify; the submits took us

  // Recovery: once everything in flight delivers and the pipeline is idle again,
  // the gate releases even though the recent window still remembers slow verdicts.
  busy->Wait();
  for (const auto& ticket : admitted) {
    ticket->Wait();
  }
  std::shared_ptr<ClaimTicket> after = service.Submit(claims[2]);
  EXPECT_NE(after, nullptr);
  service.Drain();

  const MetricsSnapshot snapshot = service.metrics();
  EXPECT_EQ(snapshot.shed_slo, static_cast<int64_t>(shed));
  EXPECT_EQ(snapshot.rejected, snapshot.shed_slo);
  EXPECT_EQ(snapshot.accepted, snapshot.completed);
  EXPECT_EQ(snapshot.submitted, snapshot.accepted + snapshot.rejected);
}

TEST_F(ServiceFixture, UnorderedDeliveryMatchesReferenceOutcomes) {
  const std::vector<BatchClaim> claims = MakeClaims(*model_, 8, 0x5e2f1);
  Coordinator reference_coordinator;
  const std::vector<ReferenceOutcome> reference = RunSequentialReference(
      *model_, *commitment_, *thresholds_, claims, reference_coordinator, DisputeOptions{});

  // One shard/lane: even with delivery unordered, resolution is the global
  // submission order, so the full bitwise invariant (ledger included) must hold.
  Coordinator coordinator;
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 4;
  options.unordered_delivery = true;
  options.batching.initial_hint = 3;
  options.verifier.reuse_buffers = true;
  std::vector<std::shared_ptr<ClaimTicket>> tickets;
  {
    VerificationService service(*model_, *commitment_, *thresholds_, coordinator,
                                options);
    for (const BatchClaim& claim : claims) {
      tickets.push_back(service.Submit(claim));
      ASSERT_NE(tickets.back(), nullptr);
    }
    service.Drain();
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    ExpectOutcomeMatchesReference(tickets[i]->Wait(), reference[i], i, "unordered");
  }
  const Balances balances = coordinator.balances();
  const Balances reference_balances = reference_coordinator.balances();
  EXPECT_EQ(balances.proposer, reference_balances.proposer);
  EXPECT_EQ(balances.challenger, reference_balances.challenger);
  EXPECT_EQ(balances.treasury, reference_balances.treasury);
  EXPECT_EQ(coordinator.gas().total(), reference_coordinator.gas().total());
}

TEST_F(ServiceFixture, MetricsSnapshotsAreConsistentWhileTheServiceRuns) {
  const std::vector<BatchClaim> claims = MakeClaims(*model_, 12, 0x3e7a1);
  Coordinator coordinator;
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 4;
  options.batching.initial_hint = 3;
  options.verifier.reuse_buffers = true;
  VerificationService service(*model_, *commitment_, *thresholds_, coordinator, options);

  std::atomic<bool> done{false};
  std::thread submitter([&] {
    std::vector<std::shared_ptr<ClaimTicket>> tickets;
    for (const BatchClaim& claim : claims) {
      tickets.push_back(service.Submit(claim));
    }
    for (const auto& ticket : tickets) {
      ticket->Wait();
    }
    done.store(true);
  });

  // Poll snapshots concurrently with the pipeline and check the cross-counter
  // invariants every time.
  int64_t last_completed = 0;
  while (!done.load()) {
    const MetricsSnapshot snapshot = service.metrics();
    EXPECT_LE(snapshot.completed, snapshot.accepted);
    EXPECT_LE(snapshot.accepted + snapshot.rejected, snapshot.submitted);
    EXPECT_GE(snapshot.completed, last_completed) << "completed went backwards";
    EXPECT_GE(snapshot.claims_in_flight, 0);
    EXPECT_LE(snapshot.queue_depth, 4);
    last_completed = snapshot.completed;
  }
  submitter.join();
  service.Drain();

  const MetricsSnapshot final_snapshot = service.metrics();
  EXPECT_EQ(final_snapshot.completed, static_cast<int64_t>(claims.size()));
  int64_t batch_hist_total = 0;
  int64_t latency_hist_total = 0;
  for (const int64_t count : final_snapshot.batch_size_hist) {
    batch_hist_total += count;
  }
  for (const int64_t count : final_snapshot.latency_hist_us) {
    latency_hist_total += count;
  }
  EXPECT_EQ(batch_hist_total, final_snapshot.batches_dispatched);
  EXPECT_EQ(latency_hist_total, final_snapshot.completed);
  EXPECT_GT(final_snapshot.claims_per_second, 0.0);
  const double p50 = final_snapshot.LatencyPercentileMillis(0.5);
  const double p99 = final_snapshot.LatencyPercentileMillis(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
}

}  // namespace
}  // namespace tao
