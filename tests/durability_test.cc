// Durability suite (ISSUE 7): the write-ahead changelog, shard snapshots, and
// crash/corruption recovery of src/durability/.
//
// Layers, bottom up:
//
//   * Framing units: record round trips, the torn-vs-corrupt distinction (a torn
//     tail truncates; a full-but-inconsistent frame is a typed error), file headers.
//   * Codec units: every CoordinatorAction kind and the shard snapshot re-encode
//     canonically; short/overlong/non-canonical payloads are rejected.
//   * Decode fuzz (seed-parameterized, fuzz_graph_test.cc's pattern): mutated and
//     random payloads never crash, never read out of bounds, and are either
//     rejected or decode to a value that re-encodes to the exact accepted bytes —
//     "accept but differ" is impossible by construction.
//   * Crash injection on scripted state-machine workloads: the writer dies at each
//     CrashPoint; recovery must land on a bitwise-exact PREFIX of the scripted run
//     (snapshot + tail + torn-tail truncation), and continuing the script from that
//     prefix reconverges bitwise with the uninterrupted reference.
//   * Corruption: truncated tails recover; bit flips, bad magic, shard/model
//     mismatches, log gaps, and corrupt committed snapshots fail loudly with typed
//     RecoveryStatus codes; stale snapshot tmps are deleted, never loaded.
//   * Service integration: the live VerificationService pipeline over durable
//     coordinators for shards {1,4} x workers {1,4} — durable == in-memory bitwise,
//     recovery == original bitwise, and mid-run writer crashes recover to a prefix
//     of each lane's reconstructed action stream.

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/durability/changelog.h"
#include "src/durability/coordinator_log.h"
#include "src/durability/framing.h"
#include "src/durability/options.h"
#include "src/service/verification_service.h"
#include "src/util/rng.h"
#include "tests/replay_harness.h"
#include "tests/test_claims.h"

namespace tao {
namespace {

using Kind = CoordinatorAction::Kind;

// ------------------------------- shared helpers --------------------------------------

// Fresh per-test directory under the system temp root (removed up front so a
// re-run never sees a previous run's files).
std::string MakeTestDir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("tao_durability_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!bytes.empty()) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  ASSERT_TRUE(out.good()) << path;
}

Digest TestDigest(uint64_t tag) {
  return Sha256::Hash("durability-claim-" + std::to_string(tag));
}

// --------------------------------- framing units -------------------------------------

TEST(FramingTest, FrameRoundTripsAndStreams) {
  std::vector<uint8_t> buffer;
  const std::vector<std::vector<uint8_t>> payloads = {
      {}, {0x42}, {1, 2, 3, 4, 5}, std::vector<uint8_t>(300, 0xAB)};
  for (const auto& payload : payloads) {
    AppendFrame(buffer, payload);
  }
  size_t offset = 0;
  for (const auto& want : payloads) {
    std::span<const uint8_t> got;
    ASSERT_EQ(DecodeFrame(buffer, offset, got), FrameStatus::kOk);
    EXPECT_EQ(std::vector<uint8_t>(got.begin(), got.end()), want);
  }
  std::span<const uint8_t> rest;
  EXPECT_EQ(DecodeFrame(buffer, offset, rest), FrameStatus::kEnd);
  EXPECT_EQ(offset, buffer.size());
}

TEST(FramingTest, EveryProperPrefixOfAFrameIsTornNotCorrupt) {
  std::vector<uint8_t> buffer;
  AppendFrame(buffer, std::vector<uint8_t>{10, 20, 30, 40});
  // A crash mid-append leaves a byte-prefix: every strict prefix must classify as
  // torn (truncate and continue), never as corruption.
  for (size_t keep = 0; keep < buffer.size(); ++keep) {
    const std::span<const uint8_t> cut(buffer.data(), keep);
    size_t offset = 0;
    std::span<const uint8_t> payload;
    const FrameStatus status = DecodeFrame(cut, offset, payload);
    if (keep == 0) {
      EXPECT_EQ(status, FrameStatus::kEnd) << "keep=" << keep;
    } else {
      EXPECT_EQ(status, FrameStatus::kTorn) << "keep=" << keep;
    }
    EXPECT_EQ(offset, 0u) << "keep=" << keep;
  }
}

TEST(FramingTest, HeaderAndPayloadBitFlipsAreCorrupt) {
  std::vector<uint8_t> frame;
  AppendFrame(frame, std::vector<uint8_t>{10, 20, 30, 40});
  for (const size_t at : {size_t{0}, size_t{4}, size_t{8}, kFrameHeaderBytes + 1}) {
    std::vector<uint8_t> flipped = frame;
    flipped[at] ^= 0x01;
    size_t offset = 0;
    std::span<const uint8_t> payload;
    EXPECT_EQ(DecodeFrame(flipped, offset, payload), FrameStatus::kCorrupt)
        << "flip at byte " << at;
    EXPECT_EQ(offset, 0u);
  }
  // An absurd claimed length (with a matching length_check, so the redundancy
  // cannot save us) is still rejected by the payload ceiling.
  std::vector<uint8_t> huge;
  AppendU32Le(huge, kMaxRecordPayloadBytes + 1);
  AppendU32Le(huge, (kMaxRecordPayloadBytes + 1) ^ kLengthCheckXor);
  AppendU32Le(huge, 0);
  size_t offset = 0;
  std::span<const uint8_t> payload;
  EXPECT_EQ(DecodeFrame(huge, offset, payload), FrameStatus::kCorrupt);
}

TEST(FramingTest, FileHeaderRoundTripAndValidation) {
  FileHeader header;
  header.shard = 3;
  header.num_shards = 8;
  header.model_id = 42;
  header.base_record = 1234;
  std::vector<uint8_t> bytes;
  AppendFileHeader(bytes, kChangelogMagic, header);
  ASSERT_EQ(bytes.size(), kFileHeaderBytes);

  FileHeader decoded;
  bool torn = false;
  EXPECT_EQ(DecodeFileHeader(bytes, kChangelogMagic, decoded, torn), RecoveryCode::kOk);
  EXPECT_FALSE(torn);
  EXPECT_EQ(decoded.shard, 3u);
  EXPECT_EQ(decoded.num_shards, 8u);
  EXPECT_EQ(decoded.model_id, 42u);
  EXPECT_EQ(decoded.base_record, 1234u);

  // Wrong magic (a snapshot file fed to the changelog reader) is a bad header.
  EXPECT_EQ(DecodeFileHeader(bytes, kSnapshotMagic, decoded, torn),
            RecoveryCode::kBadHeader);
  // Any single-byte flip breaks the header CRC (or the magic/version directly).
  for (size_t at = 0; at < bytes.size(); ++at) {
    std::vector<uint8_t> flipped = bytes;
    flipped[at] ^= 0x10;
    EXPECT_EQ(DecodeFileHeader(flipped, kChangelogMagic, decoded, torn),
              RecoveryCode::kBadHeader)
        << "flip at byte " << at;
  }
  // A short header is torn (fresh/interrupted file), not an error.
  const std::span<const uint8_t> cut(bytes.data(), kFileHeaderBytes - 1);
  EXPECT_EQ(DecodeFileHeader(cut, kChangelogMagic, decoded, torn), RecoveryCode::kOk);
  EXPECT_TRUE(torn);
}

// ---------------------------------- codec units --------------------------------------

// One sample of every action kind, fields chosen to exercise sign/width edges.
std::vector<CoordinatorAction> SampleActions() {
  std::vector<CoordinatorAction> actions;
  {
    CoordinatorAction a;
    a.kind = Kind::kSubmit;
    a.id = 7;
    a.c0 = TestDigest(7);
    a.challenge_window = 100;
    a.proposer_bond = 10.25;
    actions.push_back(a);
  }
  {
    CoordinatorAction a;
    a.kind = Kind::kTryFinalize;
    a.id = 7;
    actions.push_back(a);
  }
  {
    CoordinatorAction a;
    a.kind = Kind::kOpenChallenge;
    a.id = 1ull << 40;
    a.challenger_bond = -0.0;  // bitwise: -0.0 must survive, not become +0.0
    actions.push_back(a);
  }
  {
    CoordinatorAction a;
    a.kind = Kind::kPartition;
    a.id = 3;
    a.children = 4;
    actions.push_back(a);
  }
  {
    CoordinatorAction a;
    a.kind = Kind::kSelection;
    a.id = 3;
    a.selected_child = -1;
    actions.push_back(a);
  }
  {
    CoordinatorAction a;
    a.kind = Kind::kMerkleCheck;
    a.id = 3;
    a.proofs = 12;
    actions.push_back(a);
  }
  {
    CoordinatorAction a;
    a.kind = Kind::kTimeout;
    a.id = 3;
    a.proposer_timed_out = true;
    actions.push_back(a);
  }
  {
    CoordinatorAction a;
    a.kind = Kind::kLeafAdjudication;
    a.id = 3;
    a.proposer_guilty = true;
    a.challenger_share = 0.5;
    actions.push_back(a);
  }
  {
    CoordinatorAction a;
    a.kind = Kind::kChargeGas;
    a.id = 9;
    a.gas = -1234567;
    actions.push_back(a);
  }
  {
    CoordinatorAction a;
    a.kind = Kind::kAdvanceClock;
    a.ticks = 11;
    actions.push_back(a);
  }
  return actions;
}

TEST(ActionCodecTest, EveryKindRoundTripsCanonically) {
  for (const CoordinatorAction& action : SampleActions()) {
    const std::vector<uint8_t> bytes = EncodeAction(action);
    CoordinatorAction decoded;
    ASSERT_TRUE(DecodeAction(bytes, decoded))
        << "kind " << static_cast<uint32_t>(action.kind);
    // Canonical: the decode re-encodes to the identical byte string.
    EXPECT_EQ(EncodeAction(decoded), bytes)
        << "kind " << static_cast<uint32_t>(action.kind);
    EXPECT_EQ(decoded.kind, action.kind);
    EXPECT_EQ(decoded.id, action.id);
  }
  // -0.0 survives bitwise.
  CoordinatorAction open;
  open.kind = Kind::kOpenChallenge;
  open.challenger_bond = -0.0;
  CoordinatorAction decoded;
  ASSERT_TRUE(DecodeAction(EncodeAction(open), decoded));
  EXPECT_EQ(DoubleBits(decoded.challenger_bond), DoubleBits(-0.0));
}

TEST(ActionCodecTest, MalformedPayloadsAreRejected) {
  for (const CoordinatorAction& action : SampleActions()) {
    const std::vector<uint8_t> bytes = EncodeAction(action);
    // Every strict byte-prefix is too short for the kind's exact layout.
    for (size_t keep = 0; keep < bytes.size(); ++keep) {
      CoordinatorAction decoded;
      EXPECT_FALSE(DecodeAction(std::span(bytes.data(), keep), decoded))
          << "kind " << static_cast<uint32_t>(action.kind) << " keep=" << keep;
    }
    // Trailing garbage makes the payload overlong: rejected, not ignored.
    std::vector<uint8_t> extended = bytes;
    extended.push_back(0);
    CoordinatorAction decoded;
    EXPECT_FALSE(DecodeAction(extended, decoded));
  }
  // Unknown kind.
  std::vector<uint8_t> unknown;
  AppendU32Le(unknown, 999);
  CoordinatorAction decoded;
  EXPECT_FALSE(DecodeAction(unknown, decoded));
  // Non-canonical bool (2 is not a bool encoding).
  CoordinatorAction timeout;
  timeout.kind = Kind::kTimeout;
  timeout.id = 1;
  timeout.proposer_timed_out = true;
  std::vector<uint8_t> bytes = EncodeAction(timeout);
  bytes.back() = 2;
  EXPECT_FALSE(DecodeAction(bytes, decoded));
}

ShardSnapshotState SampleSnapshot() {
  ShardSnapshotState state;
  state.now = 123;
  state.submitted = 3;
  state.balances.proposer = -10.5;
  state.balances.challenger = 2.25;
  state.balances.treasury = 5.0;
  state.gas = 99999;
  for (uint64_t j = 0; j < 3; ++j) {
    ClaimRecord record;
    record.id = 1 + j * 4;
    record.model = 2;
    record.c0 = TestDigest(j);
    record.committed_at = 10 * j;
    record.challenge_window = 100;
    record.state = static_cast<ClaimState>(j % 5);
    record.proposer_bond = 10.0;
    record.challenger_bond = j == 0 ? -0.0 : 2.0;
    record.dispute_round = static_cast<int64_t>(j);
    record.round_deadline = 10 * j + 7;
    record.merkle_checks = 3 * static_cast<int64_t>(j);
    record.gas = 1000 + static_cast<int64_t>(j);
    state.claims.push_back(record);
  }
  return state;
}

TEST(SnapshotCodecTest, RoundTripsCanonically) {
  const ShardSnapshotState state = SampleSnapshot();
  const std::vector<uint8_t> bytes = EncodeShardSnapshot(state);
  ShardSnapshotState decoded;
  ASSERT_TRUE(DecodeShardSnapshot(bytes, decoded));
  EXPECT_EQ(EncodeShardSnapshot(decoded), bytes);
  EXPECT_EQ(decoded.now, state.now);
  EXPECT_EQ(decoded.submitted, state.submitted);
  EXPECT_EQ(DoubleBits(decoded.balances.proposer), DoubleBits(state.balances.proposer));
  ASSERT_EQ(decoded.claims.size(), state.claims.size());
  for (size_t j = 0; j < state.claims.size(); ++j) {
    ExpectClaimRecordsEqual(decoded.claims[j], state.claims[j],
                            "claim " + std::to_string(j));
  }
}

TEST(SnapshotCodecTest, MalformedPayloadsAreRejected) {
  const std::vector<uint8_t> bytes = EncodeShardSnapshot(SampleSnapshot());
  ShardSnapshotState decoded;
  for (const size_t keep : {size_t{0}, size_t{7}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(DecodeShardSnapshot(std::span(bytes.data(), keep), decoded))
        << "keep=" << keep;
  }
  std::vector<uint8_t> extended = bytes;
  extended.push_back(0);
  EXPECT_FALSE(DecodeShardSnapshot(extended, decoded));
  // Flip every byte and require that NO mutation is accepted-but-different (the
  // canonical re-encode catches any flip that still decodes — including claim
  // states pushed outside the enum range, which must be rejected outright).
  for (size_t at = 0; at < bytes.size(); ++at) {
    std::vector<uint8_t> flipped = bytes;
    flipped[at] ^= 0x80;
    ShardSnapshotState got;
    if (DecodeShardSnapshot(flipped, got)) {
      EXPECT_EQ(EncodeShardSnapshot(got), flipped) << "flip at byte " << at;
    }
  }
}

// ----------------------------------- decode fuzz -------------------------------------

class DurabilityFuzzTest : public ::testing::TestWithParam<uint64_t> {};

CoordinatorAction RandomAction(Rng& rng) {
  CoordinatorAction a;
  a.kind = static_cast<Kind>(1 + rng.NextBounded(10));
  a.id = rng.NextU64();
  for (auto& byte : a.c0) {
    byte = static_cast<uint8_t>(rng.NextU64());
  }
  a.challenge_window = rng.NextU64();
  // Raw bit patterns (including NaNs/infinities): the codec must carry any of them.
  a.proposer_bond = std::bit_cast<double>(rng.NextU64());
  a.challenger_bond = std::bit_cast<double>(rng.NextU64());
  a.children = static_cast<int64_t>(rng.NextU64());
  a.selected_child = static_cast<int64_t>(rng.NextU64());
  a.proofs = static_cast<int64_t>(rng.NextU64());
  a.proposer_timed_out = rng.NextBounded(2) == 1;
  a.proposer_guilty = rng.NextBounded(2) == 1;
  a.challenger_share = std::bit_cast<double>(rng.NextU64());
  a.gas = static_cast<int64_t>(rng.NextU64());
  a.ticks = rng.NextU64();
  return a;
}

// Core fuzz property for any canonical codec: for EVERY input — valid, mutated, or
// random soup — decode never crashes or reads out of bounds, and when it accepts,
// re-encoding reproduces the input bytes exactly. "Accept but decode differently"
// is therefore impossible: two distinct byte strings cannot decode to one value.
TEST_P(DurabilityFuzzTest, ActionDecodeIsTotalAndCanonical) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 200; ++iteration) {
    const std::vector<uint8_t> bytes = EncodeAction(RandomAction(rng));
    CoordinatorAction decoded;
    ASSERT_TRUE(DecodeAction(bytes, decoded));
    ASSERT_EQ(EncodeAction(decoded), bytes);

    // Mutations of a valid encoding: flip a byte, truncate, or extend.
    std::vector<uint8_t> mutated = bytes;
    const uint64_t mode = rng.NextBounded(3);
    if (mode == 0 && !mutated.empty()) {
      mutated[rng.NextBounded(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBounded(8));
    } else if (mode == 1) {
      mutated.resize(rng.NextBounded(mutated.size() + 1));
    } else {
      mutated.push_back(static_cast<uint8_t>(rng.NextU64()));
    }
    CoordinatorAction from_mutated;
    if (DecodeAction(mutated, from_mutated)) {
      EXPECT_EQ(EncodeAction(from_mutated), mutated);
    }

    // Random soup of arbitrary length.
    std::vector<uint8_t> soup(rng.NextBounded(96));
    for (auto& byte : soup) {
      byte = static_cast<uint8_t>(rng.NextU64());
    }
    CoordinatorAction from_soup;
    if (DecodeAction(soup, from_soup)) {
      EXPECT_EQ(EncodeAction(from_soup), soup);
    }
  }
}

TEST_P(DurabilityFuzzTest, SnapshotDecodeIsTotalAndCanonical) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 50; ++iteration) {
    ShardSnapshotState state;
    state.now = rng.NextU64();
    state.submitted = rng.NextU64();
    state.balances.proposer = std::bit_cast<double>(rng.NextU64());
    state.balances.challenger = std::bit_cast<double>(rng.NextU64());
    state.balances.treasury = std::bit_cast<double>(rng.NextU64());
    state.gas = static_cast<int64_t>(rng.NextU64());
    const uint64_t claims = rng.NextBounded(5);
    for (uint64_t j = 0; j < claims; ++j) {
      ClaimRecord record;
      record.id = rng.NextU64();
      record.model = rng.NextU64();
      for (auto& byte : record.c0) {
        byte = static_cast<uint8_t>(rng.NextU64());
      }
      record.committed_at = rng.NextU64();
      record.challenge_window = rng.NextU64();
      record.state = static_cast<ClaimState>(rng.NextBounded(5));
      record.proposer_bond = std::bit_cast<double>(rng.NextU64());
      record.challenger_bond = std::bit_cast<double>(rng.NextU64());
      record.dispute_round = static_cast<int64_t>(rng.NextU64());
      record.round_deadline = rng.NextU64();
      record.merkle_checks = static_cast<int64_t>(rng.NextU64());
      record.gas = static_cast<int64_t>(rng.NextU64());
      state.claims.push_back(record);
    }
    const std::vector<uint8_t> bytes = EncodeShardSnapshot(state);
    ShardSnapshotState decoded;
    ASSERT_TRUE(DecodeShardSnapshot(bytes, decoded));
    ASSERT_EQ(EncodeShardSnapshot(decoded), bytes);

    std::vector<uint8_t> mutated = bytes;
    const uint64_t mode = rng.NextBounded(3);
    if (mode == 0 && !mutated.empty()) {
      mutated[rng.NextBounded(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBounded(8));
    } else if (mode == 1) {
      mutated.resize(rng.NextBounded(mutated.size() + 1));
    } else {
      mutated.push_back(static_cast<uint8_t>(rng.NextU64()));
    }
    ShardSnapshotState from_mutated;
    if (DecodeShardSnapshot(mutated, from_mutated)) {
      EXPECT_EQ(EncodeShardSnapshot(from_mutated), mutated);
    }
  }
}

TEST_P(DurabilityFuzzTest, FrameStreamDecodeIsTotal) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 100; ++iteration) {
    std::vector<uint8_t> stream;
    const uint64_t frames = rng.NextBounded(4);
    for (uint64_t f = 0; f < frames; ++f) {
      std::vector<uint8_t> payload(rng.NextBounded(40));
      for (auto& byte : payload) {
        byte = static_cast<uint8_t>(rng.NextU64());
      }
      AppendFrame(stream, payload);
    }
    // Mutate: flip some bytes and/or truncate.
    for (uint64_t flips = rng.NextBounded(4); flips > 0 && !stream.empty(); --flips) {
      stream[rng.NextBounded(stream.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBounded(8));
    }
    if (rng.NextBounded(2) == 0) {
      stream.resize(rng.NextBounded(stream.size() + 1));
    }
    // Walk the stream to a terminal status: the offset must only ever advance, stay
    // in bounds, and the walk must terminate (kTorn/kCorrupt/kEnd all stop it).
    size_t offset = 0;
    for (;;) {
      const size_t before = offset;
      std::span<const uint8_t> payload;
      const FrameStatus status = DecodeFrame(stream, offset, payload);
      if (status != FrameStatus::kOk) {
        EXPECT_EQ(offset, before);
        break;
      }
      ASSERT_GT(offset, before);
      ASSERT_LE(offset, stream.size());
      EXPECT_EQ(payload.size(), offset - before - kFrameHeaderBytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DurabilityFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// -------------------------- scripted crash-injection sweep ---------------------------
//
// Deterministic per-shard workloads expressed directly as CoordinatorAction scripts:
// applying script[i] issues exactly one public mutation, which logs exactly one
// changelog record — so "the log is a prefix of the run" becomes "recovered state
// equals a fresh run of the script's first total_records actions".

std::vector<CoordinatorAction> BuildShardScript(size_t shard, size_t num_shards,
                                                size_t claims) {
  std::vector<CoordinatorAction> script;
  const DisputeOptions dispute;  // window 100, bonds 10/2, share 0.5
  for (size_t j = 0; j < claims; ++j) {
    const ClaimId id = 1 + shard + j * num_shards;
    CoordinatorAction submit;
    submit.kind = Kind::kSubmit;
    submit.id = id;
    submit.c0 = TestDigest(id);
    submit.challenge_window = dispute.challenge_window;
    submit.proposer_bond = dispute.proposer_bond;
    script.push_back(submit);

    CoordinatorAction base;
    base.id = id;
    switch ((shard + j) % 4) {
      case 0: {  // unchallenged finalization
        CoordinatorAction advance = base;
        advance.kind = Kind::kAdvanceClock;
        advance.ticks = dispute.challenge_window;
        script.push_back(advance);
        CoordinatorAction finalize = base;
        finalize.kind = Kind::kTryFinalize;
        script.push_back(finalize);
        break;
      }
      case 1: {  // two-round dispute, proposer guilty
        CoordinatorAction open = base;
        open.kind = Kind::kOpenChallenge;
        open.challenger_bond = dispute.challenger_bond;
        script.push_back(open);
        for (int round = 0; round < 2; ++round) {
          CoordinatorAction partition = base;
          partition.kind = Kind::kPartition;
          partition.children = 4;
          partition.c0 = TestDigest(id);  // filler child hashes (not state)
          script.push_back(partition);
          CoordinatorAction merkle = base;
          merkle.kind = Kind::kMerkleCheck;
          merkle.proofs = 3;
          script.push_back(merkle);
          CoordinatorAction selection = base;
          selection.kind = Kind::kSelection;
          selection.selected_child = round;
          script.push_back(selection);
          CoordinatorAction tick = base;
          tick.kind = Kind::kAdvanceClock;
          tick.ticks = 1;
          script.push_back(tick);
        }
        CoordinatorAction leaf = base;
        leaf.kind = Kind::kLeafAdjudication;
        leaf.proposer_guilty = true;
        leaf.challenger_share = dispute.challenger_share;
        script.push_back(leaf);
        break;
      }
      case 2: {  // dispute decided by deadline timeout (round_timeout = 10)
        CoordinatorAction open = base;
        open.kind = Kind::kOpenChallenge;
        open.challenger_bond = dispute.challenger_bond;
        script.push_back(open);
        CoordinatorAction partition = base;
        partition.kind = Kind::kPartition;
        partition.children = 2;
        partition.c0 = TestDigest(id);
        script.push_back(partition);
        CoordinatorAction merkle = base;
        merkle.kind = Kind::kMerkleCheck;
        merkle.proofs = 1;
        script.push_back(merkle);
        CoordinatorAction advance = base;
        advance.kind = Kind::kAdvanceClock;
        advance.ticks = 11;  // past the refreshed round deadline
        script.push_back(advance);
        CoordinatorAction timeout = base;
        timeout.kind = Kind::kTimeout;
        timeout.proposer_timed_out = (j % 2 == 0);
        script.push_back(timeout);
        break;
      }
      default: {  // gas charge + dispute resolved in the proposer's favor
        CoordinatorAction charge = base;
        charge.kind = Kind::kChargeGas;
        charge.gas = 77 + static_cast<int64_t>(j);
        script.push_back(charge);
        CoordinatorAction open = base;
        open.kind = Kind::kOpenChallenge;
        open.challenger_bond = dispute.challenger_bond + 0.5;
        script.push_back(open);
        CoordinatorAction leaf = base;
        leaf.kind = Kind::kLeafAdjudication;
        leaf.proposer_guilty = false;
        leaf.challenger_share = dispute.challenger_share;
        script.push_back(leaf);
        break;
      }
    }
  }
  return script;
}

std::vector<std::vector<CoordinatorAction>> BuildScripts(size_t num_shards,
                                                         size_t claims) {
  std::vector<std::vector<CoordinatorAction>> scripts;
  scripts.reserve(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    scripts.push_back(BuildShardScript(shard, num_shards, claims));
  }
  return scripts;
}

// Issues script actions [begin, end) as public Coordinator calls — the same calls
// whose logging produced (or would produce) those records.
void ApplyScriptActions(Coordinator& coordinator, size_t shard,
                        const std::vector<CoordinatorAction>& script, size_t begin,
                        size_t end) {
  for (size_t i = begin; i < end; ++i) {
    const CoordinatorAction& a = script[i];
    switch (a.kind) {
      case Kind::kSubmit:
        EXPECT_EQ(coordinator.SubmitCommitment(a.c0, a.challenge_window,
                                               a.proposer_bond, shard),
                  a.id);
        break;
      case Kind::kTryFinalize:
        EXPECT_EQ(coordinator.TryFinalize(a.id), ClaimState::kFinalized);
        break;
      case Kind::kOpenChallenge:
        coordinator.OpenChallenge(a.id, a.challenger_bond);
        break;
      case Kind::kPartition:
        coordinator.RecordPartition(
            a.id, a.children,
            std::vector<Digest>(static_cast<size_t>(a.children), a.c0));
        break;
      case Kind::kSelection:
        coordinator.RecordSelection(a.id, a.selected_child);
        break;
      case Kind::kMerkleCheck:
        coordinator.RecordMerkleCheck(a.id, a.proofs);
        break;
      case Kind::kTimeout:
        coordinator.RecordTimeout(a.id, a.proposer_timed_out);
        break;
      case Kind::kLeafAdjudication:
        coordinator.RecordLeafAdjudication(a.id, a.proposer_guilty, a.challenger_share);
        break;
      case Kind::kChargeGas:
        coordinator.ChargeClaimGas(a.id, a.gas);
        break;
      case Kind::kAdvanceClock:
        // Any id homed to this shard selects its clock (1 + shard always is).
        coordinator.AdvanceTimeFor(1 + shard, a.ticks);
        break;
    }
  }
}

void ApplyAllScripts(Coordinator& coordinator,
                     const std::vector<std::vector<CoordinatorAction>>& scripts) {
  for (size_t shard = 0; shard < scripts.size(); ++shard) {
    ApplyScriptActions(coordinator, shard, scripts[shard], 0, scripts[shard].size());
  }
}

constexpr size_t kScriptClaims = 6;

// The crash-injection core. Runs the scripted workload on a durable coordinator
// whose writer dies at the `occurrence`-th hit of `point`, recovers from disk, and
// asserts the two halves of the acceptance criterion:
//   1. PREFIX: the recovered coordinator is bitwise a fresh run of each shard's
//      first `total_records` script actions (whatever the crash left on disk).
//   2. RECONVERGENCE: continuing each shard's script from that prefix on the
//      recovered (still durable) coordinator lands bitwise on the uninterrupted
//      reference.
void RunCrashCase(CrashPoint point, int occurrence, size_t num_shards,
                  const std::string& tag) {
  const std::string label = "point=" + std::string(CrashPointName(point)) +
                            " occurrence=" + std::to_string(occurrence) +
                            " shards=" + std::to_string(num_shards);
  const std::string dir = MakeTestDir(tag);
  const auto scripts = BuildScripts(num_shards, kScriptClaims);

  Coordinator reference(GasSchedule{}, /*round_timeout=*/10, num_shards);
  ApplyAllScripts(reference, scripts);

  DurabilityOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNever;  // injection targets the writer, not the disk
  options.snapshot_interval_records = 5;
  std::atomic<int> hits{0};
  std::atomic<bool> fired{false};
  options.crash_hook = [&hits, &fired, point, occurrence](CrashPoint at, size_t) {
    if (at != point || ++hits != occurrence) {
      return false;
    }
    fired = true;
    return true;
  };
  {
    Coordinator durable(GasSchedule{}, /*round_timeout=*/10, num_shards,
                        /*model_id=*/0, options);
    ApplyAllScripts(durable, scripts);
    durable.FlushDurability();  // barrier completes even with a dead writer
  }
  ASSERT_TRUE(fired.load()) << label << ": the crash point never triggered";

  DurabilityOptions recovery_options;
  recovery_options.directory = dir;
  recovery_options.fsync = FsyncPolicy::kNever;
  recovery_options.snapshot_interval_records = 5;
  {
    RecoveryStatus status;
    Coordinator recovered(GasSchedule{}, /*round_timeout=*/10, num_shards,
                          /*model_id=*/0, recovery_options, &status);
    ASSERT_TRUE(status.ok()) << label << ": " << status.message;
    const RecoveryInfo& info = recovered.recovery_info();
    ASSERT_TRUE(info.recovered) << label;
    ASSERT_EQ(info.shards.size(), num_shards) << label;

    Coordinator prefix(GasSchedule{}, /*round_timeout=*/10, num_shards);
    for (size_t shard = 0; shard < num_shards; ++shard) {
      const uint64_t kept = info.shards[shard].total_records;
      ASSERT_LE(kept, scripts[shard].size()) << label << " shard=" << shard;
      ApplyScriptActions(prefix, shard, scripts[shard], 0, static_cast<size_t>(kept));
    }
    ExpectCoordinatorsBitwiseEqual(recovered, prefix, label + " [prefix]");

    for (size_t shard = 0; shard < num_shards; ++shard) {
      const uint64_t kept = info.shards[shard].total_records;
      ApplyScriptActions(recovered, shard, scripts[shard], static_cast<size_t>(kept),
                         scripts[shard].size());
    }
    ExpectCoordinatorsBitwiseEqual(recovered, reference, label + " [reconverged]");
  }  // join the recovered writer before deleting its directory
  std::filesystem::remove_all(dir);
}

TEST(CrashInjectionTest, EveryCrashPointRecoversToAPrefixAndReconverges) {
  int case_index = 0;
  for (const CrashPoint point :
       {CrashPoint::kPreFlush, CrashPoint::kMidRecord, CrashPoint::kPostSnapshotTmp,
        CrashPoint::kPreRename}) {
    for (const int occurrence : {1, 2}) {
      for (const size_t shards : {size_t{1}, size_t{4}}) {
        RunCrashCase(point, occurrence, shards,
                     "crash_" + std::to_string(case_index++));
      }
    }
  }
}

TEST(CrashInjectionTest, LateMidRecordCrashKeepsEarlierRecords) {
  // A deep occurrence: most of the log survives, the torn record truncates.
  RunCrashCase(CrashPoint::kMidRecord, /*occurrence=*/40, /*num_shards=*/4,
               "crash_late");
}

// ------------------------- uninterrupted durable equivalence -------------------------

TEST(DurabilityTest, InMemoryModeIsZeroCostDefault) {
  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/10, /*num_shards=*/2);
  EXPECT_FALSE(coordinator.durable());
  EXPECT_FALSE(coordinator.recovery_info().recovered);
  const DurabilityStats stats = coordinator.durability_stats();
  EXPECT_EQ(stats.records_appended, 0);
  EXPECT_EQ(stats.bytes_appended, 0);
  coordinator.FlushDurability();  // no-op, must not crash
}

TEST(DurabilityTest, UninterruptedDurableRunMatchesInMemoryUnderEveryFsyncPolicy) {
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    const auto scripts = BuildScripts(shards, kScriptClaims);
    Coordinator reference(GasSchedule{}, /*round_timeout=*/10, shards);
    ApplyAllScripts(reference, scripts);
    size_t total_actions = 0;
    for (const auto& script : scripts) {
      total_actions += script.size();
    }

    int policy_index = 0;
    for (const FsyncPolicy policy :
         {FsyncPolicy::kNever, FsyncPolicy::kGroupCommit, FsyncPolicy::kEveryFlush}) {
      const std::string label = "shards=" + std::to_string(shards) +
                                " fsync=" + FsyncPolicyName(policy);
      const std::string dir = MakeTestDir("uninterrupted_" + std::to_string(shards) +
                                          "_" + std::to_string(policy_index++));
      DurabilityOptions options;
      options.directory = dir;
      options.fsync = policy;
      options.group_commit_interval_ms = 1;
      options.snapshot_interval_records = 7;
      {
        Coordinator durable(GasSchedule{}, /*round_timeout=*/10, shards,
                            /*model_id=*/0, options);
        ASSERT_TRUE(durable.durable()) << label;
        EXPECT_FALSE(durable.recovery_info().recovered) << label;  // fresh directory
        ApplyAllScripts(durable, scripts);
        // Durability must not perturb the state machine at all.
        ExpectCoordinatorsBitwiseEqual(durable, reference, label + " [live]");
        durable.FlushDurability();
        const DurabilityStats stats = durable.durability_stats();
        EXPECT_EQ(stats.records_appended, static_cast<int64_t>(total_actions)) << label;
        EXPECT_GT(stats.bytes_appended, 0) << label;
        EXPECT_GT(stats.flushes, 0) << label;
        EXPECT_GT(stats.snapshots_written, 0) << label;
        if (policy == FsyncPolicy::kNever) {
          EXPECT_EQ(stats.fsyncs, 0) << label;
        } else {
          EXPECT_GT(stats.fsyncs, 0) << label;
        }
      }
      RecoveryStatus status;
      Coordinator recovered(GasSchedule{}, /*round_timeout=*/10, shards,
                            /*model_id=*/0, options, &status);
      ASSERT_TRUE(status.ok()) << label << ": " << status.message;
      ASSERT_TRUE(recovered.recovery_info().recovered) << label;
      uint64_t recovered_records = 0;
      for (const ShardRecoveryInfo& shard_info : recovered.recovery_info().shards) {
        EXPECT_EQ(shard_info.snapshot_records + shard_info.replayed_records,
                  shard_info.total_records)
            << label;
        EXPECT_EQ(shard_info.truncated_bytes, 0u) << label;
        recovered_records += shard_info.total_records;
      }
      EXPECT_EQ(recovered_records, total_actions) << label;
      ExpectCoordinatorsBitwiseEqual(recovered, reference, label + " [recovered]");
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(DurabilityTest, GlobalAdvanceTimeLogsEveryShardClock) {
  const std::string dir = MakeTestDir("advance_all");
  DurabilityOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNever;
  Coordinator reference(GasSchedule{}, /*round_timeout=*/10, /*num_shards=*/3);
  {
    Coordinator durable(GasSchedule{}, /*round_timeout=*/10, /*num_shards=*/3,
                        /*model_id=*/0, options);
    for (Coordinator* coordinator : {&durable, &reference}) {
      std::vector<ClaimId> ids;
      for (size_t shard = 0; shard < 3; ++shard) {
        ids.push_back(coordinator->SubmitCommitment(TestDigest(shard), 100, 10.0, shard));
      }
      coordinator->AdvanceTime(100);  // the one cross-shard mutation
      for (const ClaimId id : ids) {
        EXPECT_EQ(coordinator->TryFinalize(id), ClaimState::kFinalized);
      }
    }
    ExpectCoordinatorsBitwiseEqual(durable, reference, "advance-all [live]");
    durable.FlushDurability();
  }
  RecoveryStatus status;
  Coordinator recovered(GasSchedule{}, /*round_timeout=*/10, /*num_shards=*/3,
                        /*model_id=*/0, options, &status);
  ASSERT_TRUE(status.ok()) << status.message;
  ExpectCoordinatorsBitwiseEqual(recovered, reference, "advance-all [recovered]");
  std::filesystem::remove_all(dir);
}

// --------------------------------- corruption suite ----------------------------------

struct DurableRunFiles {
  std::string dir;
  std::vector<std::vector<CoordinatorAction>> scripts;
};

// One completed single-shard durable run with at least one committed snapshot and a
// non-empty changelog tail, closed cleanly. The corruption tests mutate its files.
DurableRunFiles MakeCompletedRun(const std::string& tag, size_t num_shards) {
  DurableRunFiles run;
  run.dir = MakeTestDir(tag);
  run.scripts = BuildScripts(num_shards, kScriptClaims);
  DurabilityOptions options;
  options.directory = run.dir;
  options.fsync = FsyncPolicy::kNever;
  options.snapshot_interval_records = 5;
  Coordinator durable(GasSchedule{}, /*round_timeout=*/10, num_shards, /*model_id=*/0,
                      options);
  ApplyAllScripts(durable, run.scripts);
  durable.FlushDurability();
  return run;
}

DurabilityOptions RecoverOptions(const std::string& dir) {
  DurabilityOptions options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNever;
  options.snapshot_interval_records = 5;
  return options;
}

TEST(CorruptionTest, TruncatedTailRecoversToAPrefix) {
  const DurableRunFiles run = MakeCompletedRun("trunc_tail", 1);
  const std::string log = ChangelogPath(run.dir, 0);
  std::vector<uint8_t> bytes = ReadFileBytes(log);
  ASSERT_GT(bytes.size(), kFileHeaderBytes + 5);
  bytes.resize(bytes.size() - 5);  // tear the final record mid-frame
  WriteFileBytes(log, bytes);

  RecoveryStatus status;
  Coordinator recovered(GasSchedule{}, 10, 1, 0, RecoverOptions(run.dir), &status);
  ASSERT_TRUE(status.ok()) << status.message;
  const ShardRecoveryInfo& info = recovered.recovery_info().shards[0];
  EXPECT_GT(info.truncated_bytes, 0u);
  ASSERT_LT(info.total_records, run.scripts[0].size());

  Coordinator prefix(GasSchedule{}, 10, 1);
  ApplyScriptActions(prefix, 0, run.scripts[0], 0,
                     static_cast<size_t>(info.total_records));
  ExpectCoordinatorsBitwiseEqual(recovered, prefix, "truncated tail");
  std::filesystem::remove_all(run.dir);
}

TEST(CorruptionTest, CutAtFrameBoundaryRecoversCleanly) {
  const DurableRunFiles run = MakeCompletedRun("trunc_boundary", 1);
  const std::string log = ChangelogPath(run.dir, 0);
  std::vector<uint8_t> bytes = ReadFileBytes(log);
  // Walk the frames and cut exactly after the second-to-last one.
  size_t offset = kFileHeaderBytes;
  size_t previous = offset;
  for (;;) {
    std::span<const uint8_t> payload;
    const size_t before = offset;
    if (DecodeFrame(bytes, offset, payload) != FrameStatus::kOk) {
      break;
    }
    previous = before;
  }
  bytes.resize(previous);
  WriteFileBytes(log, bytes);

  RecoveryStatus status;
  Coordinator recovered(GasSchedule{}, 10, 1, 0, RecoverOptions(run.dir), &status);
  ASSERT_TRUE(status.ok()) << status.message;
  const ShardRecoveryInfo& info = recovered.recovery_info().shards[0];
  EXPECT_EQ(info.truncated_bytes, 0u);  // a clean cut has no torn bytes
  Coordinator prefix(GasSchedule{}, 10, 1);
  ApplyScriptActions(prefix, 0, run.scripts[0], 0,
                     static_cast<size_t>(info.total_records));
  ExpectCoordinatorsBitwiseEqual(recovered, prefix, "boundary cut");
  std::filesystem::remove_all(run.dir);
}

TEST(CorruptionTest, PayloadBitFlipFailsLoudly) {
  const DurableRunFiles run = MakeCompletedRun("bitflip_payload", 1);
  const std::string log = ChangelogPath(run.dir, 0);
  std::vector<uint8_t> bytes = ReadFileBytes(log);
  bytes[kFileHeaderBytes + kFrameHeaderBytes + 2] ^= 0x40;  // first record's payload
  WriteFileBytes(log, bytes);

  RecoveryStatus status;
  Coordinator recovered(GasSchedule{}, 10, 1, 0, RecoverOptions(run.dir), &status);
  EXPECT_EQ(status.code, RecoveryCode::kCorruptRecord);
  EXPECT_FALSE(recovered.durable());  // durability disabled; caller must discard
  std::filesystem::remove_all(run.dir);
}

TEST(CorruptionTest, LengthFieldFlipIsCorruptionNotTruncation) {
  const DurableRunFiles run = MakeCompletedRun("bitflip_length", 1);
  const std::string log = ChangelogPath(run.dir, 0);
  std::vector<uint8_t> bytes = ReadFileBytes(log);
  // A full header whose length and length_check disagree can only be bit rot (a
  // torn write shortens the frame, it cannot rewrite it in place) — so this must be
  // a typed error, NOT silently truncated away like a torn tail.
  bytes[kFileHeaderBytes] ^= 0xFF;
  WriteFileBytes(log, bytes);

  RecoveryStatus status;
  Coordinator recovered(GasSchedule{}, 10, 1, 0, RecoverOptions(run.dir), &status);
  EXPECT_EQ(status.code, RecoveryCode::kCorruptRecord);
  std::filesystem::remove_all(run.dir);
}

TEST(CorruptionTest, BadChangelogMagicIsABadHeader) {
  const DurableRunFiles run = MakeCompletedRun("bad_magic", 1);
  const std::string log = ChangelogPath(run.dir, 0);
  std::vector<uint8_t> bytes = ReadFileBytes(log);
  bytes[0] ^= 0xFF;
  WriteFileBytes(log, bytes);

  RecoveryStatus status;
  Coordinator recovered(GasSchedule{}, 10, 1, 0, RecoverOptions(run.dir), &status);
  EXPECT_EQ(status.code, RecoveryCode::kBadHeader);
  std::filesystem::remove_all(run.dir);
}

TEST(CorruptionTest, ShardLayoutAndModelMismatchesAreRejected) {
  const DurableRunFiles run = MakeCompletedRun("layout_mismatch", 2);
  {
    RecoveryStatus status;
    Coordinator wrong_shards(GasSchedule{}, 10, /*num_shards=*/4, 0,
                             RecoverOptions(run.dir), &status);
    EXPECT_EQ(status.code, RecoveryCode::kShardMismatch);
  }
  {
    RecoveryStatus status;
    Coordinator wrong_model(GasSchedule{}, 10, /*num_shards=*/2, /*model_id=*/9,
                            RecoverOptions(run.dir), &status);
    EXPECT_EQ(status.code, RecoveryCode::kShardMismatch);
  }
  {
    // The matching layout still recovers fine afterwards (the rejects wrote nothing).
    RecoveryStatus status;
    Coordinator right(GasSchedule{}, 10, /*num_shards=*/2, 0, RecoverOptions(run.dir),
                      &status);
    EXPECT_TRUE(status.ok()) << status.message;
  }
  std::filesystem::remove_all(run.dir);
}

TEST(CorruptionTest, CorruptCommittedSnapshotFailsLoudly) {
  const DurableRunFiles run = MakeCompletedRun("bad_snapshot", 1);
  const std::string snap = SnapshotPath(run.dir, 0);
  ASSERT_TRUE(std::filesystem::exists(snap)) << "run too short to snapshot";
  std::vector<uint8_t> bytes = ReadFileBytes(snap);
  bytes[kFileHeaderBytes + kFrameHeaderBytes + 3] ^= 0x01;
  WriteFileBytes(snap, bytes);

  RecoveryStatus status;
  Coordinator recovered(GasSchedule{}, 10, 1, 0, RecoverOptions(run.dir), &status);
  EXPECT_EQ(status.code, RecoveryCode::kCorruptSnapshot);
  std::filesystem::remove_all(run.dir);
}

TEST(CorruptionTest, StaleSnapshotTmpIsDeletedNeverLoaded) {
  const DurableRunFiles run = MakeCompletedRun("stale_tmp", 1);
  Coordinator reference(GasSchedule{}, 10, 1);
  ApplyAllScripts(reference, run.scripts);
  const std::string tmp = SnapshotTmpPath(run.dir, 0);
  WriteFileBytes(tmp, std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF});

  RecoveryStatus status;
  Coordinator recovered(GasSchedule{}, 10, 1, 0, RecoverOptions(run.dir), &status);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_FALSE(std::filesystem::exists(tmp));  // garbage is removed, not consulted
  ExpectCoordinatorsBitwiseEqual(recovered, reference, "stale tmp");
  std::filesystem::remove_all(run.dir);
}

TEST(CorruptionTest, MissingChangelogUnderASnapshotIsALogGap) {
  const DurableRunFiles run = MakeCompletedRun("log_gap", 1);
  ASSERT_TRUE(std::filesystem::exists(SnapshotPath(run.dir, 0)));
  std::filesystem::remove(ChangelogPath(run.dir, 0));

  RecoveryStatus status;
  Coordinator recovered(GasSchedule{}, 10, 1, 0, RecoverOptions(run.dir), &status);
  EXPECT_EQ(status.code, RecoveryCode::kLogGap);
  std::filesystem::remove_all(run.dir);
}

TEST(CorruptionTest, EmptyAndMissingChangelogsStartFresh) {
  // A zero-byte changelog (crash before the header landed) is a fresh shard.
  const std::string dir = MakeTestDir("empty_log");
  WriteFileBytes(ChangelogPath(dir, 0), {});
  RecoveryStatus status;
  Coordinator from_empty(GasSchedule{}, 10, 1, 0, RecoverOptions(dir), &status);
  ASSERT_TRUE(status.ok()) << status.message;
  EXPECT_TRUE(from_empty.shard_claims(0).empty());
  EXPECT_EQ(from_empty.shard_now(0), 0u);

  // A directory with no files at all is simply a fresh deployment.
  const std::string fresh = MakeTestDir("fresh_dir");
  RecoveryStatus fresh_status;
  Coordinator from_fresh(GasSchedule{}, 10, 1, 0, RecoverOptions(fresh), &fresh_status);
  ASSERT_TRUE(fresh_status.ok()) << fresh_status.message;
  EXPECT_FALSE(from_fresh.recovery_info().recovered);
  EXPECT_TRUE(from_fresh.durable());
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(fresh);
}

// ------------------------------- service integration ---------------------------------

class DurableServiceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new Model(BuildBertMini());
    CalibrateOptions options;
    options.num_samples = 4;
    thresholds_ = new ThresholdSet(
        Calibrate(*model_, DeviceRegistry::Fleet(), options).MakeThresholds(3.0));
    commitment_ = new ModelCommitment(*model_->graph, *thresholds_);
  }

  static void TearDownTestSuite() {
    delete commitment_;
    delete thresholds_;
    delete model_;
    commitment_ = nullptr;
    thresholds_ = nullptr;
    model_ = nullptr;
  }

  static Model* model_;
  static ThresholdSet* thresholds_;
  static ModelCommitment* commitment_;
};

Model* DurableServiceFixture::model_ = nullptr;
ThresholdSet* DurableServiceFixture::thresholds_ = nullptr;
ModelCommitment* DurableServiceFixture::commitment_ = nullptr;

constexpr size_t kServiceClaims = 8;

// Runs the live service over `coordinator` and returns the delivered outcomes in
// submission order.
std::vector<BatchClaimOutcome> RunService(const Model& model,
                                          const ModelCommitment& commitment,
                                          const ThresholdSet& thresholds,
                                          Coordinator& coordinator, int workers,
                                          MetricsSnapshot* metrics = nullptr) {
  const std::vector<BatchClaim> claims =
      MakeTestClaims(model, kServiceClaims, 0x5e2f1, /*cheat_rate=*/0.4,
                     /*supervised_rate=*/0.6);
  ServiceOptions options;
  options.num_workers = workers;
  // Pinned placement for every durable-service run: the changelog digests and
  // recovery comparisons below must be identical with workers pinned to cores
  // (pinning is outcome-inert; this suite holds that against crash/replay).
  options.pin_workers = true;
  options.queue_capacity = 4;
  options.batching.initial_hint = 3;
  options.verifier.dispute.num_threads = 2;
  options.verifier.reuse_buffers = true;
  std::vector<std::shared_ptr<ClaimTicket>> tickets;
  std::vector<BatchClaimOutcome> outcomes;
  {
    VerificationService service(model, commitment, thresholds, coordinator, options);
    for (const BatchClaim& claim : claims) {
      tickets.push_back(service.Submit(claim));
      EXPECT_NE(tickets.back(), nullptr);
    }
    service.Drain();
    if (metrics != nullptr) {
      *metrics = service.metrics();
    }
  }
  outcomes.reserve(tickets.size());
  for (const auto& ticket : tickets) {
    outcomes.push_back(ticket->Wait());
  }
  return outcomes;
}

// Reconstructs one lane's coordinator-action stream from delivered outcomes — the
// exact per-shard record sequence the durable run logged (ReplayShardActions' twin,
// producing a prefix-indexable vector instead of driving a coordinator directly).
std::vector<CoordinatorAction> ReconstructLaneActions(
    const std::vector<BatchClaimOutcome>& outcomes, size_t shard, size_t num_shards) {
  const DisputeOptions dispute;
  std::vector<CoordinatorAction> actions;
  uint64_t ordinal = 0;
  for (size_t i = shard; i < outcomes.size(); i += num_shards) {
    const BatchClaimOutcome& outcome = outcomes[i];
    const ClaimId id = 1 + shard + ordinal * num_shards;
    ++ordinal;
    CoordinatorAction submit;
    submit.kind = Kind::kSubmit;
    submit.id = id;
    submit.c0 = outcome.c0;
    submit.challenge_window = dispute.challenge_window;
    submit.proposer_bond = dispute.proposer_bond;
    actions.push_back(submit);
    CoordinatorAction base;
    base.id = id;
    base.c0 = outcome.c0;
    if (!outcome.flagged) {
      CoordinatorAction advance = base;
      advance.kind = Kind::kAdvanceClock;
      advance.ticks = dispute.challenge_window;
      actions.push_back(advance);
      CoordinatorAction finalize = base;
      finalize.kind = Kind::kTryFinalize;
      actions.push_back(finalize);
      continue;
    }
    CoordinatorAction open = base;
    open.kind = Kind::kOpenChallenge;
    open.challenger_bond = dispute.challenger_bond;
    actions.push_back(open);
    for (const RoundStats& round : outcome.dispute.round_stats) {
      CoordinatorAction partition = base;
      partition.kind = Kind::kPartition;
      partition.children = round.children;
      actions.push_back(partition);
      CoordinatorAction merkle = base;
      merkle.kind = Kind::kMerkleCheck;
      merkle.proofs = round.merkle_proofs;
      actions.push_back(merkle);
      if (round.selected_child >= 0) {
        CoordinatorAction selection = base;
        selection.kind = Kind::kSelection;
        selection.selected_child = round.selected_child;
        actions.push_back(selection);
        CoordinatorAction tick = base;
        tick.kind = Kind::kAdvanceClock;
        tick.ticks = 1;
        actions.push_back(tick);
      }
    }
    CoordinatorAction leaf = base;
    leaf.kind = Kind::kLeafAdjudication;
    leaf.proposer_guilty = outcome.proposer_guilty;
    leaf.challenger_share = dispute.challenger_share;
    actions.push_back(leaf);
  }
  return actions;
}

TEST_F(DurableServiceFixture, DurableServiceMatchesInMemoryAndRecovers) {
  int case_index = 0;
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    for (const int workers : {1, 4}) {
      const std::string label =
          "shards=" + std::to_string(shards) + " workers=" + std::to_string(workers);
      const std::string dir = MakeTestDir("service_" + std::to_string(case_index++));

      Coordinator memory(GasSchedule{}, /*round_timeout=*/10, shards);
      const std::vector<BatchClaimOutcome> memory_outcomes =
          RunService(*model_, *commitment_, *thresholds_, memory, workers);

      DurabilityOptions options;
      options.directory = dir;
      options.fsync = FsyncPolicy::kGroupCommit;
      options.group_commit_interval_ms = 1;
      options.snapshot_interval_records = 6;
      MetricsSnapshot metrics;
      {
        Coordinator durable(GasSchedule{}, /*round_timeout=*/10, shards,
                            /*model_id=*/0, options);
        const std::vector<BatchClaimOutcome> durable_outcomes =
            RunService(*model_, *commitment_, *thresholds_, durable, workers, &metrics);
        ASSERT_EQ(durable_outcomes.size(), memory_outcomes.size()) << label;
        for (size_t i = 0; i < durable_outcomes.size(); ++i) {
          EXPECT_EQ(durable_outcomes[i].c0, memory_outcomes[i].c0) << label;
          EXPECT_EQ(durable_outcomes[i].gas_used, memory_outcomes[i].gas_used) << label;
          EXPECT_EQ(durable_outcomes[i].final_state, memory_outcomes[i].final_state)
              << label;
        }
        // The WAL must not perturb the protocol: bitwise equal to in-memory.
        ExpectCoordinatorsBitwiseEqual(durable, memory, label + " [durable==memory]");
        durable.FlushDurability();
        // The service exported live durability counters.
        EXPECT_GT(metrics.durability_records_appended, 0) << label;
        EXPECT_GT(metrics.durability_bytes_appended, 0) << label;
      }

      RecoveryStatus status;
      Coordinator recovered(GasSchedule{}, /*round_timeout=*/10, shards,
                            /*model_id=*/0, options, &status);
      ASSERT_TRUE(status.ok()) << label << ": " << status.message;
      ASSERT_TRUE(recovered.recovery_info().recovered) << label;
      EXPECT_GT(recovered.recovery_info().total_replayed() +
                    recovered.recovery_info().shards[0].snapshot_records,
                0u)
          << label;
      ExpectCoordinatorsBitwiseEqual(recovered, memory, label + " [recovered]");
      std::filesystem::remove_all(dir);
    }
  }
}

TEST_F(DurableServiceFixture, ServiceCrashAtEveryPointRecoversToALanePrefix) {
  int case_index = 0;
  for (const CrashPoint point :
       {CrashPoint::kPreFlush, CrashPoint::kMidRecord, CrashPoint::kPostSnapshotTmp,
        CrashPoint::kPreRename}) {
    for (const auto& [shards, workers] :
         std::vector<std::pair<size_t, int>>{{1, 1}, {1, 4}, {4, 1}, {4, 4}}) {
      const std::string label = "point=" + std::string(CrashPointName(point)) +
                                " shards=" + std::to_string(shards) +
                                " workers=" + std::to_string(workers);
      const std::string dir = MakeTestDir("service_crash_" + std::to_string(case_index++));

      DurabilityOptions options;
      options.directory = dir;
      options.fsync = FsyncPolicy::kNever;
      options.snapshot_interval_records = 6;
      std::atomic<bool> fired{false};
      options.crash_hook = [&fired, point](CrashPoint at, size_t) {
        if (at != point || fired.exchange(true)) {
          return false;
        }
        return true;
      };
      std::vector<BatchClaimOutcome> outcomes;
      {
        Coordinator durable(GasSchedule{}, /*round_timeout=*/10, shards,
                            /*model_id=*/0, options);
        outcomes = RunService(*model_, *commitment_, *thresholds_, durable, workers);
        durable.FlushDurability();
      }
      ASSERT_TRUE(fired.load()) << label << ": the crash point never triggered";

      DurabilityOptions recovery_options;
      recovery_options.directory = dir;
      recovery_options.fsync = FsyncPolicy::kNever;
      recovery_options.snapshot_interval_records = 6;
      RecoveryStatus status;
      Coordinator recovered(GasSchedule{}, /*round_timeout=*/10, shards,
                            /*model_id=*/0, recovery_options, &status);
      ASSERT_TRUE(status.ok()) << label << ": " << status.message;
      const RecoveryInfo& info = recovered.recovery_info();
      ASSERT_EQ(info.shards.size(), shards) << label;

      // The disk holds a per-lane PREFIX of the reconstructed action streams:
      // recovered state must equal a fresh coordinator driven with exactly those
      // prefixes — the bitwise-identical-to-the-uninterrupted-run criterion, scoped
      // to what the crash let reach the log.
      Coordinator prefix(GasSchedule{}, /*round_timeout=*/10, shards);
      for (size_t shard = 0; shard < shards; ++shard) {
        const std::vector<CoordinatorAction> lane =
            ReconstructLaneActions(outcomes, shard, shards);
        const uint64_t kept = info.shards[shard].total_records;
        ASSERT_LE(kept, lane.size()) << label << " shard=" << shard;
        ApplyScriptActions(prefix, shard, lane, 0, static_cast<size_t>(kept));
      }
      ExpectCoordinatorsBitwiseEqual(recovered, prefix, label);
      std::filesystem::remove_all(dir);
    }
  }
}

}  // namespace
}  // namespace tao
