// Coordinator-action replay harness, shared by the shard-sweep suite
// (coordinator_shard_test.cc) and the durability crash/corruption harness
// (durability_test.cc).
//
// The per-shard determinism contract (docs/coordinator.md) says a shard's entire
// state history is a bitwise function of that shard's claim subsequence alone.
// ReplayShardActions is that contract made executable: it reconstructs the
// coordinator-action sequence of one shard's delivered outcomes — no model
// re-execution — and drives a fresh coordinator with it. The same action stream is
// what the durability changelog persists, which is why recovery can be asserted
// against these replays.

#ifndef TAO_TESTS_REPLAY_HARNESS_H_
#define TAO_TESTS_REPLAY_HARNESS_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/protocol/batch_verifier.h"
#include "src/protocol/coordinator.h"
#include "src/protocol/dispute.h"

namespace tao {

// Replays one shard's claim subsequence — coordinator ACTIONS only, reconstructed
// from the delivered outcomes — against `replay` (conventionally a fresh
// single-shard coordinator). `options` must be the dispute options the service ran
// with; the reconstruction mirrors the live call pattern of DisputeGame /
// BatchVerifier exactly: unflagged claims submit, wait out the window, finalize;
// flagged claims submit, open, then per round partition + merkle-meter (+ selection
// and a one-tick advance when the challenger selected), and finally adjudicate.
inline void ReplayShardActions(const std::vector<const BatchClaimOutcome*>& outcomes,
                               Coordinator& replay,
                               const DisputeOptions& options = {}) {
  for (const BatchClaimOutcome* outcome : outcomes) {
    const ClaimId id = replay.SubmitCommitment(outcome->c0, options.challenge_window,
                                               options.proposer_bond);
    if (!outcome->flagged) {
      replay.AdvanceTimeFor(id, options.challenge_window);
      EXPECT_EQ(replay.TryFinalize(id), ClaimState::kFinalized);
      continue;
    }
    replay.OpenChallenge(id, options.challenger_bond);
    for (const RoundStats& round : outcome->dispute.round_stats) {
      replay.RecordPartition(id, round.children,
                             std::vector<Digest>(static_cast<size_t>(round.children),
                                                 outcome->c0));
      replay.RecordMerkleCheck(id, round.merkle_proofs);
      if (round.selected_child >= 0) {
        replay.RecordSelection(id, round.selected_child);
        replay.AdvanceTimeFor(id, 1);
      }
    }
    replay.RecordLeafAdjudication(id, outcome->proposer_guilty,
                                  options.challenger_share);
  }
}

// Bitwise double compare: +0/-0 and NaN patterns distinguish (operator== would
// conflate them, and "bitwise identical" is the contract under test).
inline uint64_t DoubleBits(double value) { return std::bit_cast<uint64_t>(value); }

// EXPECTs every field of two claim records bitwise equal.
inline void ExpectClaimRecordsEqual(const ClaimRecord& got, const ClaimRecord& want,
                                    const std::string& label) {
  EXPECT_EQ(got.id, want.id) << label;
  EXPECT_EQ(got.model, want.model) << label;
  EXPECT_EQ(got.c0, want.c0) << label;
  EXPECT_EQ(got.committed_at, want.committed_at) << label;
  EXPECT_EQ(got.challenge_window, want.challenge_window) << label;
  EXPECT_EQ(got.state, want.state) << label;
  EXPECT_EQ(DoubleBits(got.proposer_bond), DoubleBits(want.proposer_bond)) << label;
  EXPECT_EQ(DoubleBits(got.challenger_bond), DoubleBits(want.challenger_bond)) << label;
  EXPECT_EQ(got.dispute_round, want.dispute_round) << label;
  EXPECT_EQ(got.round_deadline, want.round_deadline) << label;
  EXPECT_EQ(got.merkle_checks, want.merkle_checks) << label;
  EXPECT_EQ(got.gas, want.gas) << label;
}

// EXPECTs shard `shard` of `coordinator` bitwise equal to the whole of `replay` (a
// single-shard coordinator that was driven with that shard's action subsequence):
// ledger, gas meter, clock, claim ids, and every claim record field.
inline void ExpectShardMatchesReplay(const Coordinator& coordinator, size_t shard,
                                     const Coordinator& replay,
                                     const std::string& label) {
  const Balances got = coordinator.shard_balances(shard);
  const Balances want = replay.balances();
  EXPECT_EQ(DoubleBits(got.proposer), DoubleBits(want.proposer)) << label;
  EXPECT_EQ(DoubleBits(got.challenger), DoubleBits(want.challenger)) << label;
  EXPECT_EQ(DoubleBits(got.treasury), DoubleBits(want.treasury)) << label;
  EXPECT_EQ(coordinator.shard_gas(shard), replay.gas().total()) << label;
  EXPECT_EQ(coordinator.shard_now(shard), replay.now()) << label;
  const std::vector<ClaimId> shard_ids = coordinator.shard_claims(shard);
  const std::vector<ClaimId> replay_ids = replay.shard_claims(0);
  ASSERT_EQ(shard_ids.size(), replay_ids.size()) << label;
  for (size_t j = 0; j < shard_ids.size(); ++j) {
    ClaimRecord got_record = coordinator.claim(shard_ids[j]);
    ClaimRecord want_record = replay.claim(replay_ids[j]);
    // The replayed single-shard coordinator re-derives dense ids (and carries its
    // own model id); identity of the remaining fields is what the contract claims.
    got_record.id = want_record.id = 0;
    got_record.model = want_record.model = 0;
    ExpectClaimRecordsEqual(got_record, want_record,
                            label + " claim[" + std::to_string(j) + "]");
  }
}

// EXPECTs two same-layout coordinators bitwise equal across EVERY shard — the
// recovered-vs-uninterrupted assertion of the durability harness.
inline void ExpectCoordinatorsBitwiseEqual(const Coordinator& got,
                                           const Coordinator& want,
                                           const std::string& label) {
  ASSERT_EQ(got.num_shards(), want.num_shards()) << label;
  for (size_t shard = 0; shard < got.num_shards(); ++shard) {
    const std::string shard_label = label + " shard=" + std::to_string(shard);
    const Balances got_balances = got.shard_balances(shard);
    const Balances want_balances = want.shard_balances(shard);
    EXPECT_EQ(DoubleBits(got_balances.proposer), DoubleBits(want_balances.proposer))
        << shard_label;
    EXPECT_EQ(DoubleBits(got_balances.challenger), DoubleBits(want_balances.challenger))
        << shard_label;
    EXPECT_EQ(DoubleBits(got_balances.treasury), DoubleBits(want_balances.treasury))
        << shard_label;
    EXPECT_EQ(got.shard_gas(shard), want.shard_gas(shard)) << shard_label;
    EXPECT_EQ(got.shard_now(shard), want.shard_now(shard)) << shard_label;
    const std::vector<ClaimId> got_ids = got.shard_claims(shard);
    const std::vector<ClaimId> want_ids = want.shard_claims(shard);
    ASSERT_EQ(got_ids, want_ids) << shard_label;
    for (const ClaimId id : got_ids) {
      ExpectClaimRecordsEqual(got.claim(id), want.claim(id),
                              shard_label + " claim " + std::to_string(id));
    }
  }
}

}  // namespace tao

#endif  // TAO_TESTS_REPLAY_HARNESS_H_
