// Attack-pipeline tests: Adam behaviour, projection correctness (both feasible sets),
// bucket sampling, and end-to-end PGD runs — perturbations always stay admissible, and
// under empirical thresholds the attack makes near-zero progress (the Table 2 result).

#include <cmath>

#include <gtest/gtest.h>

#include "src/attack/adam.h"
#include "src/attack/pgd.h"
#include "src/attack/projection.h"
#include "src/calib/calibrator.h"
#include "src/graph/executor.h"

namespace tao {
namespace {

TEST(AdamTest, AscendsSimpleQuadratic) {
  // Maximize -x^2 from x = 3: gradient is -2x; Adam should walk toward 0.
  Tensor x = Tensor::Full(Shape{1}, 3.0f);
  AdamState adam(Shape{1}, 0.1);
  for (int i = 0; i < 200; ++i) {
    Tensor grad = Tensor::Full(Shape{1}, -2.0f * x[0]);
    adam.Step(x, grad);
  }
  EXPECT_NEAR(x[0], 0.0f, 0.1f);
}

TEST(AdamTest, StepSizeBoundsFirstUpdate) {
  Tensor x = Tensor::Zeros(Shape{4});
  AdamState adam(Shape{4}, 0.01);
  Tensor grad = Tensor::Full(Shape{4}, 123.0f);
  adam.Step(x, grad);
  // Bias-corrected Adam first step is ~step_size regardless of gradient scale.
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x[i], 0.01f, 1e-3f);
  }
}

TEST(ProjectionTest, TheoreticalClipsElementwise) {
  Tensor delta = Tensor::Zeros(Shape{4});
  delta.mutable_values()[0] = 5.0f;
  delta.mutable_values()[1] = -5.0f;
  delta.mutable_values()[2] = 0.5f;
  delta.mutable_values()[3] = -0.1f;
  DTensor tau(Shape{4});
  tau.mutable_values()[0] = 1.0;
  tau.mutable_values()[1] = 2.0;
  tau.mutable_values()[2] = 1.0;
  tau.mutable_values()[3] = 0.05;
  ProjectTheoretical(delta, tau);
  EXPECT_FLOAT_EQ(delta[0], 1.0f);
  EXPECT_FLOAT_EQ(delta[1], -2.0f);
  EXPECT_FLOAT_EQ(delta[2], 0.5f);
  EXPECT_FLOAT_EQ(delta[3], -0.05f);
  EXPECT_TRUE(SatisfiesTheoretical(delta, tau));
}

class AttackFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new Model(BuildBertMini());
    CalibrateOptions options;
    options.num_samples = 6;
    const Calibration calibration = Calibrate(*model_, DeviceRegistry::Fleet(), options);
    thresholds_ = new ThresholdSet(calibration.MakeThresholds(3.0));
  }

  static void TearDownTestSuite() {
    delete thresholds_;
    delete model_;
    thresholds_ = nullptr;
    model_ = nullptr;
  }

  static Model* model_;
  static ThresholdSet* thresholds_;
};

Model* AttackFixture::model_ = nullptr;
ThresholdSet* AttackFixture::thresholds_ = nullptr;

TEST_F(AttackFixture, EmpiricalProjectionEnforcesCapCurve) {
  Rng rng(1);
  // Pick an op with nonzero thresholds.
  NodeId id = -1;
  for (const NodeId candidate : model_->graph->op_nodes()) {
    if (thresholds_->AbsCap(candidate, 0.99) > 0.0) {
      id = candidate;
      break;
    }
  }
  ASSERT_GE(id, 0);
  Tensor delta = Tensor::Randn(model_->graph->node(id).shape, rng, 1.0f);
  EXPECT_FALSE(SatisfiesEmpirical(delta, *thresholds_, id));
  ProjectEmpirical(delta, *thresholds_, id);
  EXPECT_TRUE(SatisfiesEmpirical(delta, *thresholds_, id));
}

TEST_F(AttackFixture, EmpiricalProjectionIdempotent) {
  Rng rng(2);
  const NodeId id = model_->graph->op_nodes()[10];
  Tensor delta = Tensor::Randn(model_->graph->node(id).shape, rng, 1e-2f);
  ProjectEmpirical(delta, *thresholds_, id);
  Tensor again = delta.Clone();
  ProjectEmpirical(again, *thresholds_, id);
  EXPECT_EQ(MaxAbsDiff(delta, again), 0.0);
}

TEST_F(AttackFixture, EmpiricalProjectionPreservesSignsAndOrdering) {
  Rng rng(3);
  const NodeId id = model_->graph->op_nodes()[10];
  Tensor delta = Tensor::Randn(model_->graph->node(id).shape, rng, 1.0f);
  const Tensor original = delta.Clone();
  ProjectEmpirical(delta, *thresholds_, id);
  for (int64_t i = 0; i < delta.numel(); ++i) {
    if (delta[i] != 0.0f) {
      EXPECT_EQ(std::signbit(delta[i]), std::signbit(original[i]));
    }
    EXPECT_LE(std::abs(delta[i]), std::abs(original[i]) + 1e-12f);
  }
}

TEST_F(AttackFixture, BucketTargetsAreDistinctFromPrediction) {
  Rng rng(4);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const Executor exec(*model_->graph, DeviceRegistry::Reference());
  const Tensor logits = exec.RunOutput(input);
  Rng bucket_rng(5);
  const auto targets = PgdAttack::SampleBucketTargets(logits, bucket_rng);
  EXPECT_EQ(targets.size(), 5u);
  int64_t c1 = 0;
  for (int64_t c = 1; c < logits.numel(); ++c) {
    if (logits[c] > logits[c1]) {
      c1 = c;
    }
  }
  for (const int64_t t : targets) {
    EXPECT_NE(t, c1);
    EXPECT_GE(t, 0);
    EXPECT_LT(t, logits.numel());
  }
}

TEST_F(AttackFixture, EmpiricalAttackFailsWithNearZeroProgress) {
  // The core Table 2 claim: under empirical thresholds the PGD attack cannot flip the
  // prediction and barely moves the margin.
  AttackConfig config;
  config.feasible = FeasibleSetKind::kEmpirical;
  config.max_iters = 25;
  const PgdAttack attack(*model_, *thresholds_, config);
  Rng rng(6);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const Executor exec(*model_->graph, DeviceRegistry::Reference());
  const Tensor logits = exec.RunOutput(input);
  Rng bucket_rng(7);
  const auto targets = PgdAttack::SampleBucketTargets(logits, bucket_rng);
  const AttackOutcome outcome = attack.Attack(input, targets[0]);
  EXPECT_FALSE(outcome.success);
  EXPECT_GT(outcome.m0, 0.0);
  EXPECT_LT(std::abs(outcome.delta_rel), 0.5);
}

TEST_F(AttackFixture, TheoreticalDeterministicLoosensVsProbabilistic) {
  // The deterministic-gamma feasible set strictly contains the probabilistic one, so
  // attack progress must be at least as large (Fig. 3 / Table 2 rationale).
  Rng rng(8);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const Executor exec(*model_->graph, DeviceRegistry::Reference());
  const Tensor logits = exec.RunOutput(input);
  Rng bucket_rng(9);
  const auto targets = PgdAttack::SampleBucketTargets(logits, bucket_rng);

  AttackConfig prob;
  prob.feasible = FeasibleSetKind::kTheoretical;
  prob.theo_mode = BoundMode::kProbabilistic;
  prob.max_iters = 10;
  AttackConfig det = prob;
  det.theo_mode = BoundMode::kDeterministic;
  const AttackOutcome prob_outcome = PgdAttack(*model_, *thresholds_, prob).Attack(input, targets[0]);
  const AttackOutcome det_outcome = PgdAttack(*model_, *thresholds_, det).Attack(input, targets[0]);
  EXPECT_GE(det_outcome.delta_m, prob_outcome.delta_m - 1e-3);
}

TEST_F(AttackFixture, AttackOutcomeBookkeepingConsistent) {
  AttackConfig config;
  config.feasible = FeasibleSetKind::kEmpirical;
  config.max_iters = 5;
  const PgdAttack attack(*model_, *thresholds_, config);
  Rng rng(10);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const Executor exec(*model_->graph, DeviceRegistry::Reference());
  const Tensor logits = exec.RunOutput(input);
  Rng bucket_rng(11);
  const auto targets = PgdAttack::SampleBucketTargets(logits, bucket_rng);
  const AttackOutcome outcome = attack.Attack(input, targets[2]);
  EXPECT_NEAR(outcome.delta_m, outcome.m0 - outcome.m_final, 1e-9);
  EXPECT_GT(outcome.iters, 0);
  EXPECT_LE(outcome.iters, config.max_iters);
  EXPECT_EQ(outcome.target_class, targets[2]);
}

}  // namespace
}  // namespace tao
