// Batched-vs-sequential equivalence suite for the batch verification pipeline.
//
// The protocol invariant under test: lowering K claims' phase-1 executions into one
// scheduler DAG (BatchVerifier / Executor::RunBatch) changes WHERE the numbers are
// computed, never the numbers — so for every (threads x arena x batch-size)
// combination, verdicts, per-claim gas, C0 digests, final states, the coordinator
// ledger, and MarketplaceStats are bitwise identical to the one-claim-at-a-time
// sequential path.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/protocol/batch_verifier.h"
#include "src/protocol/marketplace.h"
#include "tests/test_claims.h"

namespace tao {
namespace {

class BatchVerifierFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new Model(BuildBertMini());
    CalibrateOptions options;
    options.num_samples = 4;
    thresholds_ = new ThresholdSet(
        Calibrate(*model_, DeviceRegistry::Fleet(), options).MakeThresholds(3.0));
    commitment_ = new ModelCommitment(*model_->graph, *thresholds_);
  }

  static void TearDownTestSuite() {
    delete commitment_;
    delete thresholds_;
    delete model_;
    commitment_ = nullptr;
    thresholds_ = nullptr;
    model_ = nullptr;
  }

  static Model* model_;
  static ThresholdSet* thresholds_;
  static ModelCommitment* commitment_;
};

Model* BatchVerifierFixture::model_ = nullptr;
ThresholdSet* BatchVerifierFixture::thresholds_ = nullptr;
ModelCommitment* BatchVerifierFixture::commitment_ = nullptr;

bool SameBits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.values().data(), b.values().data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

// Draws a deterministic cohort (shared generator, this suite's heavier mix).
std::vector<BatchClaim> MakeClaims(const Model& model, size_t count, uint64_t seed) {
  return MakeTestClaims(model, count, seed, /*cheat_rate=*/0.5,
                        /*supervised_rate=*/0.75);
}

// Reference protocol outcome of one claim, computed by the sequential PR-1 path:
// DisputeGame::Run for supervised claims, the proposer-commits-and-window-elapses
// path for unsupervised ones.
struct ReferenceOutcome {
  ClaimId claim_id = 0;
  Digest c0{};
  bool flagged = false;
  bool proposer_guilty = false;
  ClaimState final_state = ClaimState::kCommitted;
  int64_t gas_used = 0;
  int64_t rounds = 0;
  int64_t merkle_checks = 0;
};

std::vector<ReferenceOutcome> RunSequentialReference(const Model& model,
                                                     const ModelCommitment& commitment,
                                                     const ThresholdSet& thresholds,
                                                     const std::vector<BatchClaim>& claims,
                                                     Coordinator& coordinator,
                                                     const DisputeOptions& options) {
  const Graph& graph = *model.graph;
  std::vector<ReferenceOutcome> outcomes;
  outcomes.reserve(claims.size());
  for (const BatchClaim& claim : claims) {
    ReferenceOutcome ref;
    if (claim.supervised()) {
      DisputeGame game(model, commitment, thresholds, coordinator, options);
      const DisputeResult result = game.Run(claim.inputs, *claim.proposer_device,
                                            *claim.verifier_device, claim.perturbations);
      ref.claim_id = result.claim_id;
      ref.c0 = coordinator.claim(result.claim_id).c0;
      ref.flagged = result.challenge_raised;
      ref.proposer_guilty = result.proposer_guilty;
      ref.final_state = result.final_state;
      ref.gas_used = result.gas_used;
      ref.rounds = result.rounds;
      ref.merkle_checks = result.total_merkle_checks;
    } else {
      const Executor exec(graph, *claim.proposer_device);
      const ExecutionTrace trace = exec.RunPerturbed(claim.inputs, claim.perturbations);
      ResultMeta meta;
      meta.device = claim.proposer_device->name;
      meta.challenge_window = options.challenge_window;
      ref.c0 = ComputeResultCommitment(commitment, claim.inputs,
                                       trace.value(graph.output()), meta);
      const ClaimId id =
          coordinator.SubmitCommitment(ref.c0, options.challenge_window,
                                       options.proposer_bond);
      coordinator.AdvanceTime(options.challenge_window);
      ref.claim_id = id;
      ref.final_state = coordinator.TryFinalize(id);
      ref.gas_used = coordinator.claim_gas(id);
    }
    outcomes.push_back(ref);
  }
  return outcomes;
}

// `check_claim_id` applies only to claim-ordered resolution; the concurrent mode
// does not guarantee id assignment order.
void ExpectOutcomeMatchesReference(const BatchClaimOutcome& got, const ReferenceOutcome& ref,
                                   size_t i, const std::string& label,
                                   bool check_claim_id = true) {
  if (check_claim_id) {
    EXPECT_EQ(got.claim_id, ref.claim_id) << label << ": claim " << i;
  }
  EXPECT_EQ(got.c0, ref.c0) << label << ": claim " << i << " C0 digest diverged";
  EXPECT_EQ(got.flagged, ref.flagged) << label << ": claim " << i;
  EXPECT_EQ(got.proposer_guilty, ref.proposer_guilty) << label << ": claim " << i;
  EXPECT_EQ(got.final_state, ref.final_state) << label << ": claim " << i;
  EXPECT_EQ(got.gas_used, ref.gas_used) << label << ": claim " << i;
  if (got.supervised) {
    EXPECT_EQ(got.dispute.rounds, ref.rounds) << label << ": claim " << i;
    EXPECT_EQ(got.dispute.total_merkle_checks, ref.merkle_checks)
        << label << ": claim " << i;
  }
}

// ----------------------------- Executor::RunOutputBatch -----------------------------

TEST_F(BatchVerifierFixture, RunOutputBatchMatchesIndividualRuns) {
  const Graph& graph = *model_->graph;
  const Executor exec(graph, DeviceRegistry::ByName("H100"));
  Rng rng(0xba7c0);
  std::vector<std::vector<Tensor>> batch_inputs;
  for (int i = 0; i < 4; ++i) {
    batch_inputs.push_back(model_->sample_input(rng));
  }
  std::vector<Tensor> expected;
  for (const auto& inputs : batch_inputs) {
    expected.push_back(exec.RunOutput(inputs));
  }
  for (const int threads : {1, 2, 8}) {
    for (const bool reuse : {false, true}) {
      ExecutorOptions options;
      options.num_threads = threads;
      options.reuse_buffers = reuse;
      TensorArena::Stats stats;
      const std::vector<Tensor> outputs = exec.RunOutputBatch(batch_inputs, options, &stats);
      ASSERT_EQ(outputs.size(), expected.size());
      for (size_t i = 0; i < outputs.size(); ++i) {
        EXPECT_TRUE(SameBits(outputs[i], expected[i]))
            << "lane " << i << " diverged at threads=" << threads << " reuse=" << reuse;
      }
      if (reuse) {
        // Lanes share one arena: a deep batch must recycle heavily.
        EXPECT_GT(stats.pool_hits, 0);
      }
    }
  }
}

// Epilogue nodes run inside the DAG, once per lane, after the lane's output exists.
TEST_F(BatchVerifierFixture, BatchEpilogueSeesCompletedLane) {
  const Graph& graph = *model_->graph;
  const Executor exec(graph, DeviceRegistry::Reference());
  Rng rng(0xba7c1);
  std::vector<std::vector<Tensor>> batch_inputs;
  for (int i = 0; i < 3; ++i) {
    batch_inputs.push_back(model_->sample_input(rng));
  }
  for (const int threads : {1, 8}) {
    std::vector<Executor::BatchItem> items(batch_inputs.size());
    std::vector<int> completions(batch_inputs.size(), 0);
    std::vector<Tensor> seen_outputs(batch_inputs.size());
    for (size_t i = 0; i < batch_inputs.size(); ++i) {
      items[i].inputs = &batch_inputs[i];
      items[i].on_complete = [&](size_t lane, const ExecutionTrace& trace) {
        completions[lane] += 1;
        seen_outputs[lane] = trace.value(graph.output());
      };
    }
    ExecutorOptions options;
    options.num_threads = threads;
    (void)exec.RunBatch(items, options);
    for (size_t i = 0; i < batch_inputs.size(); ++i) {
      EXPECT_EQ(completions[i], 1) << "lane " << i << " at threads=" << threads;
      EXPECT_TRUE(SameBits(seen_outputs[i], exec.RunOutput(batch_inputs[i])))
          << "lane " << i << " epilogue saw a wrong output at threads=" << threads;
    }
  }
}

// ------------------------- BatchVerifier vs sequential path -------------------------

TEST_F(BatchVerifierFixture, BatchMatchesSequentialAcrossThreadsAndArena) {
  const std::vector<BatchClaim> claims = MakeClaims(*model_, 10, 0x5eedb1);

  Coordinator reference_coordinator;
  const std::vector<ReferenceOutcome> reference = RunSequentialReference(
      *model_, *commitment_, *thresholds_, claims, reference_coordinator, DisputeOptions{});
  const Balances reference_balances = reference_coordinator.balances();
  const int64_t reference_gas = reference_coordinator.gas().total();
  // The cohort must actually exercise both dispute verdicts and both channels.
  int64_t flagged = 0;
  for (const ReferenceOutcome& ref : reference) {
    flagged += ref.flagged ? 1 : 0;
  }
  ASSERT_GT(flagged, 1);
  ASSERT_LT(flagged, static_cast<int64_t>(claims.size()));

  for (const int threads : {1, 2, 8}) {
    for (const bool reuse : {false, true}) {
      const std::string label =
          "threads=" + std::to_string(threads) + " reuse=" + std::to_string(reuse);
      Coordinator coordinator;
      BatchVerifierOptions options;
      options.dispute.num_threads = threads;
      options.reuse_buffers = reuse;
      BatchVerifier verifier(*model_, *commitment_, *thresholds_, coordinator, options);
      const std::vector<BatchClaimOutcome> outcomes = verifier.VerifyBatch(claims);
      ASSERT_EQ(outcomes.size(), reference.size());
      for (size_t i = 0; i < outcomes.size(); ++i) {
        ExpectOutcomeMatchesReference(outcomes[i], reference[i], i, label);
      }
      // Claim-ordered resolution reproduces the sequential ledger bitwise.
      const Balances balances = coordinator.balances();
      EXPECT_EQ(balances.proposer, reference_balances.proposer) << label;
      EXPECT_EQ(balances.challenger, reference_balances.challenger) << label;
      EXPECT_EQ(balances.treasury, reference_balances.treasury) << label;
      EXPECT_EQ(coordinator.gas().total(), reference_gas) << label;
    }
  }
}

TEST_F(BatchVerifierFixture, BatchSizeDoesNotChangeOutcomes) {
  const std::vector<BatchClaim> claims = MakeClaims(*model_, 9, 0x5eedb2);

  Coordinator reference_coordinator;
  const std::vector<ReferenceOutcome> reference = RunSequentialReference(
      *model_, *commitment_, *thresholds_, claims, reference_coordinator, DisputeOptions{});
  const Balances reference_balances = reference_coordinator.balances();

  for (const size_t batch_size : {1u, 2u, 4u, 9u}) {
    const std::string label = "batch_size=" + std::to_string(batch_size);
    Coordinator coordinator;
    BatchVerifierOptions options;
    options.dispute.num_threads = 4;
    options.reuse_buffers = true;
    BatchVerifier verifier(*model_, *commitment_, *thresholds_, coordinator, options);
    size_t next = 0;
    std::vector<BatchClaimOutcome> outcomes;
    while (next < claims.size()) {
      const size_t end = std::min(claims.size(), next + batch_size);
      const std::vector<BatchClaim> chunk(claims.begin() + static_cast<long>(next),
                                          claims.begin() + static_cast<long>(end));
      const std::vector<BatchClaimOutcome> chunk_outcomes = verifier.VerifyBatch(chunk);
      outcomes.insert(outcomes.end(), chunk_outcomes.begin(), chunk_outcomes.end());
      next = end;
    }
    ASSERT_EQ(outcomes.size(), reference.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      ExpectOutcomeMatchesReference(outcomes[i], reference[i], i, label);
    }
    const Balances balances = coordinator.balances();
    EXPECT_EQ(balances.proposer, reference_balances.proposer) << label;
    EXPECT_EQ(balances.challenger, reference_balances.challenger) << label;
    EXPECT_EQ(balances.treasury, reference_balances.treasury) << label;
  }
}

TEST_F(BatchVerifierFixture, ConcurrentDisputesMatchVerdictsGasAndDigests) {
  const std::vector<BatchClaim> claims = MakeClaims(*model_, 8, 0x5eedb3);

  Coordinator reference_coordinator;
  const std::vector<ReferenceOutcome> reference = RunSequentialReference(
      *model_, *commitment_, *thresholds_, claims, reference_coordinator, DisputeOptions{});

  Coordinator coordinator;
  BatchVerifierOptions options;
  options.dispute.num_threads = 8;
  options.reuse_buffers = true;
  options.concurrent_disputes = true;
  BatchVerifier verifier(*model_, *commitment_, *thresholds_, coordinator, options);
  const std::vector<BatchClaimOutcome> outcomes = verifier.VerifyBatch(claims);
  ASSERT_EQ(outcomes.size(), reference.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    // Concurrent fan-out reorders ledger writes but cannot change any per-claim
    // outcome: execution is bitwise deterministic and gas is metered per claim.
    ExpectOutcomeMatchesReference(outcomes[i], reference[i], i, "concurrent",
                                  /*check_claim_id=*/false);
  }
  // The ledger still conserves value: escrow accounting closes regardless of the
  // interleaving (slashes split between challenger reward and burned treasury).
  const Balances balances = coordinator.balances();
  EXPECT_NEAR(balances.proposer + balances.challenger + balances.treasury, 0.0, 1e-9);
  EXPECT_EQ(coordinator.gas().total(), reference_coordinator.gas().total());
}

// Supervised proposer lanes are output-only: the batch's arena working set must stay
// ~flat as supervised claims are added, because full traces are only re-acquired
// lazily for flagged claims (and that re-execution bypasses the shared arena). Before
// this held, peak residency scaled linearly with supervised-claims-per-batch.
TEST_F(BatchVerifierFixture, SupervisedBatchPeakMemoryStaysFlat) {
  const auto& fleet = DeviceRegistry::Fleet();
  Rng rng(0x0e60a);
  const auto make_supervised_honest = [&](size_t count) {
    std::vector<BatchClaim> claims;
    for (size_t i = 0; i < count; ++i) {
      BatchClaim claim;
      claim.inputs = model_->sample_input(rng);
      claim.proposer_device = &fleet[rng.NextBounded(fleet.size())];
      claim.verifier_device = &fleet[rng.NextBounded(fleet.size())];
      claims.push_back(std::move(claim));
    }
    return claims;
  };
  const std::vector<BatchClaim> claims = make_supervised_honest(8);

  BatchVerifierOptions options;
  options.dispute.num_threads = 1;  // sequential lanes: peaks are deterministic
  options.reuse_buffers = true;

  Coordinator single_coordinator;
  BatchVerifier single(*model_, *commitment_, *thresholds_, single_coordinator, options);
  TensorArena::Stats single_stats;
  (void)single.VerifyBatch({claims[0]}, &single_stats);
  ASSERT_GT(single_stats.peak_outstanding_bytes, 0);

  Coordinator batch_coordinator;
  BatchVerifier batched(*model_, *commitment_, *thresholds_, batch_coordinator, options);
  TensorArena::Stats batch_stats;
  (void)batched.VerifyBatch(claims, &batch_stats);

  // 8 supervised claims' lanes recycle through one arena: the batch peak stays well
  // under two single-claim peaks (it would be ~8x if supervised lanes kept traces).
  EXPECT_LT(batch_stats.peak_outstanding_bytes, 2 * single_stats.peak_outstanding_bytes)
      << "supervised lanes are retaining full traces again";
  EXPECT_GT(batch_stats.pool_hits, 0);
}

// ------------------- Marketplace: two-phase pipeline equivalence --------------------

// The PR-1 sequential Marketplace::Run, reproduced verbatim as the regression
// reference for the two-phase refactor (draws interleaved with execution, one claim
// at a time).
MarketplaceStats InlineSequentialMarketplace(const Model& model,
                                             const ModelCommitment& commitment,
                                             const ThresholdSet& thresholds,
                                             const MarketplaceConfig& config,
                                             Balances* balances_out) {
  MarketplaceStats stats;
  Rng rng(config.seed);
  const Graph& graph = *model.graph;
  const auto& fleet = DeviceRegistry::Fleet();
  Coordinator coordinator;

  for (int64_t task = 0; task < config.num_tasks; ++task) {
    ++stats.tasks;
    const std::vector<Tensor> input = model.sample_input(rng);
    const DeviceProfile& proposer_device = fleet[rng.NextBounded(fleet.size())];

    const bool cheats = rng.NextDouble() < config.cheat_rate;
    std::vector<Executor::Perturbation> perturbations;
    if (cheats) {
      ++stats.cheats_attempted;
      const NodeId site =
          graph.op_nodes()[rng.NextBounded(static_cast<uint64_t>(graph.num_ops() - 1))];
      Rng delta_rng(rng.NextU64());
      perturbations.push_back(
          {site, Tensor::Randn(graph.node(site).shape, delta_rng, config.cheat_magnitude)});
    }

    const double draw = rng.NextDouble();
    const bool challenged = draw < config.economics.challenge_prob;
    const bool audited =
        !challenged &&
        draw < config.economics.challenge_prob + config.economics.audit_prob;

    if (!challenged && !audited) {
      const Executor proposer_exec(graph, proposer_device);
      const ExecutionTrace trace = proposer_exec.RunPerturbed(input, perturbations);
      ResultMeta meta;
      meta.device = proposer_device.name;
      meta.challenge_window = config.dispute.challenge_window;
      const Digest c0 = ComputeResultCommitment(commitment, input,
                                                trace.value(graph.output()), meta);
      const ClaimId claim = coordinator.SubmitCommitment(c0, meta.challenge_window,
                                                         config.dispute.proposer_bond);
      coordinator.AdvanceTime(meta.challenge_window);
      EXPECT_EQ(coordinator.TryFinalize(claim), ClaimState::kFinalized);
      if (cheats) {
        ++stats.cheats_escaped;
      } else {
        ++stats.finalized_clean;
      }
      continue;
    }

    if (challenged) {
      ++stats.voluntary_challenges;
    } else {
      ++stats.audits;
    }
    const DeviceProfile& verifier_device = fleet[rng.NextBounded(fleet.size())];
    DisputeGame game(model, commitment, thresholds, coordinator, config.dispute);
    const DisputeResult result =
        game.Run(input, proposer_device, verifier_device, perturbations);
    stats.total_gas += result.gas_used;

    if (!result.challenge_raised) {
      if (cheats) {
        ++stats.cheats_escaped;
      } else {
        ++stats.finalized_clean;
      }
      continue;
    }
    if (!cheats) {
      ++stats.spurious_disputes;
      if (result.final_state == ClaimState::kProposerSlashed) {
        ++stats.honest_slashes;
      }
      continue;
    }
    if (result.proposer_guilty) {
      ++stats.cheats_caught;
    } else {
      ++stats.cheats_escaped;
    }
  }
  *balances_out = coordinator.balances();
  return stats;
}

void ExpectStatsEqual(const MarketplaceStats& got, const MarketplaceStats& want,
                      const std::string& label) {
  EXPECT_EQ(got.tasks, want.tasks) << label;
  EXPECT_EQ(got.finalized_clean, want.finalized_clean) << label;
  EXPECT_EQ(got.cheats_attempted, want.cheats_attempted) << label;
  EXPECT_EQ(got.cheats_caught, want.cheats_caught) << label;
  EXPECT_EQ(got.cheats_escaped, want.cheats_escaped) << label;
  EXPECT_EQ(got.voluntary_challenges, want.voluntary_challenges) << label;
  EXPECT_EQ(got.audits, want.audits) << label;
  EXPECT_EQ(got.spurious_disputes, want.spurious_disputes) << label;
  EXPECT_EQ(got.honest_slashes, want.honest_slashes) << label;
  EXPECT_EQ(got.total_gas, want.total_gas) << label;
}

TEST_F(BatchVerifierFixture, TwoPhaseMarketplaceMatchesSequentialReference) {
  MarketplaceConfig config;
  config.num_tasks = 18;
  config.cheat_rate = 0.4;
  config.economics.challenge_prob = 0.35;
  config.economics.audit_prob = 0.2;
  config.seed = 0xfeedb4;

  Balances reference_balances;
  const MarketplaceStats reference = InlineSequentialMarketplace(
      *model_, *commitment_, *thresholds_, config, &reference_balances);
  ASSERT_GT(reference.cheats_attempted, 0);
  ASSERT_GT(reference.voluntary_challenges + reference.audits, 0);

  struct Variant {
    int64_t batch_size;
    int threads;
    bool reuse;
  };
  for (const Variant v : {Variant{1, 1, false}, Variant{5, 1, true}, Variant{18, 4, true},
                          Variant{4, 8, true}}) {
    const std::string label = "batch=" + std::to_string(v.batch_size) +
                              " threads=" + std::to_string(v.threads) +
                              " reuse=" + std::to_string(v.reuse);
    MarketplaceConfig variant_config = config;
    variant_config.verify_batch_size = v.batch_size;
    variant_config.dispute.num_threads = v.threads;
    variant_config.reuse_buffers = v.reuse;
    Marketplace market(*model_, *commitment_, *thresholds_, variant_config);
    const MarketplaceStats stats = market.Run();
    ExpectStatsEqual(stats, reference, label);
    const Balances balances = market.balances();
    EXPECT_EQ(balances.proposer, reference_balances.proposer) << label;
    EXPECT_EQ(balances.challenger, reference_balances.challenger) << label;
    EXPECT_EQ(balances.treasury, reference_balances.treasury) << label;
  }
}

}  // namespace
}  // namespace tao
