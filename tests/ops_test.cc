// Operator-library tests: forward correctness against FP64 references, shape
// inference, and the central soundness property of Sec. 3.1 — cross-device outputs of
// the same operator must differ by at most the sum of their theoretical bounds
// (deterministic mode is sound by construction; the probabilistic mode is checked with
// a tiny allowed violation budget consistent with its >=99.93% per-reduction
// confidence).

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "src/device/device.h"
#include "src/device/simd.h"
#include "src/graph/executor.h"
#include "src/models/model_zoo.h"
#include "src/ops/op_kernel.h"
#include "src/util/rng.h"

namespace tao {
namespace {

class OpsTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterAllOps(); }

  const DeviceProfile& ref_ = DeviceRegistry::Reference();
};

Tensor RandTensor(Shape shape, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), rng, scale);
}

// Runs `op` on every fleet device and asserts pairwise deviations fit within the sum
// of theoretical bounds. Returns the number of checked elements.
int64_t CheckCrossDeviceSoundness(const std::string& op, const std::vector<Tensor>& inputs,
                                  const Attrs& attrs, BoundMode mode,
                                  int64_t* violations_out = nullptr) {
  const OpKernel& kernel = OpRegistry::Instance().Get(op);
  struct Result {
    Tensor out;
    DTensor bound;
  };
  std::vector<Result> results;
  for (const DeviceProfile& device : DeviceRegistry::Fleet()) {
    const OpContext ctx{device, inputs, attrs};
    Tensor out = kernel.Forward(ctx);
    const BoundContext bctx{device, inputs, out, attrs, mode, kDefaultLambda};
    DTensor bound = kernel.Bound(bctx);
    results.push_back({std::move(out), std::move(bound)});
  }
  int64_t checked = 0;
  int64_t violations = 0;
  for (size_t a = 0; a < results.size(); ++a) {
    for (size_t b = a + 1; b < results.size(); ++b) {
      const auto va = results[a].out.values();
      const auto vb = results[b].out.values();
      const auto ba = results[a].bound.values();
      const auto bb = results[b].bound.values();
      for (size_t i = 0; i < va.size(); ++i) {
        const double diff = std::abs(static_cast<double>(va[i]) - static_cast<double>(vb[i]));
        const double cap = ba[i] + bb[i];
        ++checked;
        if (diff > cap) {
          ++violations;
        }
      }
    }
  }
  if (violations_out != nullptr) {
    *violations_out = violations;
  } else {
    EXPECT_EQ(violations, 0) << op << " deviations exceeded theoretical bounds";
  }
  return checked;
}

// ------------------------------ forward correctness --------------------------------

TEST_F(OpsTest, AddBroadcastsBias) {
  const Tensor x = RandTensor(Shape{2, 3}, 1);
  const Tensor b = RandTensor(Shape{3}, 2);
  const OpKernel& add = OpRegistry::Instance().Get("add");
  const std::vector<Tensor> inputs = {x, b};
  const Tensor out = add.Forward({ref_, inputs, {}});
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(out[i * 3 + j], x[i * 3 + j] + b[j]);
    }
  }
}

TEST_F(OpsTest, MulDivSubElementwise) {
  const Tensor a = RandTensor(Shape{16}, 3);
  const Tensor b = RandTensor(Shape{16}, 4, 1.0f);
  const std::vector<Tensor> inputs = {a, b};
  const Tensor mul = OpRegistry::Instance().Get("mul").Forward({ref_, inputs, {}});
  const Tensor divided = OpRegistry::Instance().Get("div").Forward({ref_, inputs, {}});
  const Tensor sub = OpRegistry::Instance().Get("sub").Forward({ref_, inputs, {}});
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(mul[i], a[i] * b[i]);
    EXPECT_FLOAT_EQ(divided[i], a[i] / b[i]);
    EXPECT_FLOAT_EQ(sub[i], a[i] - b[i]);
  }
}

TEST_F(OpsTest, ReluGeluSiluValues) {
  const Tensor x = RandTensor(Shape{64}, 5, 2.0f);
  const std::vector<Tensor> inputs = {x};
  const Tensor relu = OpRegistry::Instance().Get("relu").Forward({ref_, inputs, {}});
  const Tensor gelu = OpRegistry::Instance().Get("gelu").Forward({ref_, inputs, {}});
  const Tensor silu = OpRegistry::Instance().Get("silu").Forward({ref_, inputs, {}});
  for (int64_t i = 0; i < 64; ++i) {
    const double xd = x[i];
    EXPECT_FLOAT_EQ(relu[i], xd > 0 ? x[i] : 0.0f);
    const double gelu_ref = 0.5 * xd * (1.0 + std::erf(xd / std::sqrt(2.0)));
    EXPECT_NEAR(gelu[i], gelu_ref, 1e-5 * (1.0 + std::abs(gelu_ref)));
    const double silu_ref = xd / (1.0 + std::exp(-xd));
    EXPECT_NEAR(silu[i], silu_ref, 1e-5 * (1.0 + std::abs(silu_ref)));
  }
}

TEST_F(OpsTest, SoftmaxRowsSumToOne) {
  const Tensor x = RandTensor(Shape{4, 32}, 6, 3.0f);
  Attrs attrs;
  attrs.Set("axis", static_cast<int64_t>(-1));
  const std::vector<Tensor> inputs = {x};
  const Tensor y = OpRegistry::Instance().Get("softmax").Forward({ref_, inputs, attrs});
  for (int64_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < 32; ++c) {
      const float v = y[r * 32 + c];
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST_F(OpsTest, MatmulAgainstDoubleReference) {
  const Tensor a = RandTensor(Shape{7, 11}, 7);
  const Tensor b = RandTensor(Shape{11, 5}, 8);
  const std::vector<Tensor> inputs = {a, b};
  const Tensor out = OpRegistry::Instance().Get("matmul").Forward({ref_, inputs, {}});
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < 11; ++k) {
        acc += static_cast<double>(a[i * 11 + k]) * static_cast<double>(b[k * 5 + j]);
      }
      EXPECT_NEAR(out[i * 5 + j], acc, 1e-4 * (1.0 + std::abs(acc)));
    }
  }
}

TEST_F(OpsTest, LinearMatchesMatmulPlusBias) {
  const Tensor x = RandTensor(Shape{3, 8}, 9);
  const Tensor w = RandTensor(Shape{4, 8}, 10);
  const Tensor b = RandTensor(Shape{4}, 11);
  const std::vector<Tensor> inputs = {x, w, b};
  const Tensor out = OpRegistry::Instance().Get("linear").Forward({ref_, inputs, {}});
  EXPECT_EQ(out.shape(), Shape({3, 4}));
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t o = 0; o < 4; ++o) {
      double acc = b[o];
      for (int64_t k = 0; k < 8; ++k) {
        acc += static_cast<double>(x[r * 8 + k]) * static_cast<double>(w[o * 8 + k]);
      }
      EXPECT_NEAR(out[r * 4 + o], acc, 1e-4 * (1.0 + std::abs(acc)));
    }
  }
}

TEST_F(OpsTest, LayerNormZeroMeanUnitVar) {
  const Tensor x = RandTensor(Shape{2, 64}, 12, 5.0f);
  const Tensor w = Tensor::Full(Shape{64}, 1.0f);
  const Tensor b = Tensor::Zeros(Shape{64});
  Attrs attrs;
  attrs.Set("eps", 1e-5);
  const std::vector<Tensor> inputs = {x, w, b};
  const Tensor y = OpRegistry::Instance().Get("layer_norm").Forward({ref_, inputs, attrs});
  for (int64_t r = 0; r < 2; ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (int64_t i = 0; i < 64; ++i) {
      mean += y[r * 64 + i];
    }
    mean /= 64.0;
    for (int64_t i = 0; i < 64; ++i) {
      var += (y[r * 64 + i] - mean) * (y[r * 64 + i] - mean);
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST_F(OpsTest, RmsNormScale) {
  const Tensor x = RandTensor(Shape{3, 32}, 13);
  const Tensor w = Tensor::Full(Shape{32}, 1.0f);
  Attrs attrs;
  attrs.Set("eps", 1e-6);
  const std::vector<Tensor> inputs = {x, w};
  const Tensor y = OpRegistry::Instance().Get("rms_norm").Forward({ref_, inputs, attrs});
  for (int64_t r = 0; r < 3; ++r) {
    double ms = 0.0;
    for (int64_t i = 0; i < 32; ++i) {
      ms += static_cast<double>(x[r * 32 + i]) * x[r * 32 + i];
    }
    ms /= 32.0;
    const double inv = 1.0 / std::sqrt(ms + 1e-6);
    for (int64_t i = 0; i < 32; ++i) {
      EXPECT_NEAR(y[r * 32 + i], x[r * 32 + i] * inv, 1e-4);
    }
  }
}

TEST_F(OpsTest, Conv2dIdentityKernel) {
  // A 1x1 identity kernel with zero bias must reproduce the input.
  const Tensor x = RandTensor(Shape{1, 2, 5, 5}, 14);
  Tensor w = Tensor::Zeros(Shape{2, 2, 1, 1});
  w.mutable_values()[0] = 1.0f;  // out0 <- in0
  w.mutable_values()[3] = 1.0f;  // out1 <- in1
  const Tensor b = Tensor::Zeros(Shape{2});
  Attrs attrs;
  attrs.Set("stride", static_cast<int64_t>(1));
  attrs.Set("padding", static_cast<int64_t>(0));
  const std::vector<Tensor> inputs = {x, w, b};
  const Tensor y = OpRegistry::Instance().Get("conv2d").Forward({ref_, inputs, attrs});
  EXPECT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(y[i], x[i]);
  }
}

TEST_F(OpsTest, Conv2dShapeWithStridePadding) {
  const Tensor x = RandTensor(Shape{2, 3, 8, 8}, 15);
  const Tensor w = RandTensor(Shape{4, 3, 3, 3}, 16);
  const Tensor b = Tensor::Zeros(Shape{4});
  Attrs attrs;
  attrs.Set("stride", static_cast<int64_t>(2));
  attrs.Set("padding", static_cast<int64_t>(1));
  const std::vector<Tensor> inputs = {x, w, b};
  const Tensor y = OpRegistry::Instance().Get("conv2d").Forward({ref_, inputs, attrs});
  EXPECT_EQ(y.shape(), Shape({2, 4, 4, 4}));
}

TEST_F(OpsTest, MaxPoolSelectsMaximum) {
  Tensor x = Tensor::Zeros(Shape{1, 1, 4, 4});
  for (int64_t i = 0; i < 16; ++i) {
    x.mutable_values()[static_cast<size_t>(i)] = static_cast<float>(i);
  }
  Attrs attrs;
  attrs.Set("kernel", static_cast<int64_t>(2));
  attrs.Set("stride", static_cast<int64_t>(2));
  const std::vector<Tensor> inputs = {x};
  const Tensor y = OpRegistry::Instance().Get("max_pool2d").Forward({ref_, inputs, attrs});
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 7.0f);
  EXPECT_FLOAT_EQ(y[2], 13.0f);
  EXPECT_FLOAT_EQ(y[3], 15.0f);
}

TEST_F(OpsTest, AdaptiveAvgPoolToOne) {
  const Tensor x = RandTensor(Shape{1, 3, 6, 6}, 17);
  Attrs attrs;
  attrs.Set("out_h", static_cast<int64_t>(1));
  attrs.Set("out_w", static_cast<int64_t>(1));
  const std::vector<Tensor> inputs = {x};
  const Tensor y =
      OpRegistry::Instance().Get("adaptive_avg_pool2d").Forward({ref_, inputs, attrs});
  EXPECT_EQ(y.shape(), Shape({1, 3, 1, 1}));
  for (int64_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    for (int64_t i = 0; i < 36; ++i) {
      mean += x[c * 36 + i];
    }
    mean /= 36.0;
    EXPECT_NEAR(y[c], mean, 1e-5);
  }
}

TEST_F(OpsTest, EmbeddingGathersRows) {
  const Tensor table = RandTensor(Shape{10, 4}, 18);
  Tensor ids = Tensor::Zeros(Shape{3});
  ids.mutable_values()[0] = 7.0f;
  ids.mutable_values()[1] = 0.0f;
  ids.mutable_values()[2] = 9.0f;
  const std::vector<Tensor> inputs = {table, ids};
  const Tensor y = OpRegistry::Instance().Get("embedding").Forward({ref_, inputs, {}});
  EXPECT_EQ(y.shape(), Shape({3, 4}));
  for (int64_t d = 0; d < 4; ++d) {
    EXPECT_FLOAT_EQ(y[0 * 4 + d], table[7 * 4 + d]);
    EXPECT_FLOAT_EQ(y[1 * 4 + d], table[0 * 4 + d]);
    EXPECT_FLOAT_EQ(y[2 * 4 + d], table[9 * 4 + d]);
  }
}

TEST_F(OpsTest, TransposeAndConcatAndSlice) {
  const Tensor x = Tensor::Arange(6).WithShape(Shape{2, 3});
  Attrs tattrs;
  tattrs.Set("perm", std::vector<int64_t>{1, 0});
  const std::vector<Tensor> tin = {x};
  const Tensor xt = OpRegistry::Instance().Get("transpose").Forward({ref_, tin, tattrs});
  EXPECT_EQ(xt.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(xt[2 * 2 + 1], 5.0f);  // x[1][2]

  Attrs cattrs;
  cattrs.Set("axis", static_cast<int64_t>(0));
  const std::vector<Tensor> cin = {x, x};
  const Tensor cat = OpRegistry::Instance().Get("concat").Forward({ref_, cin, cattrs});
  EXPECT_EQ(cat.shape(), Shape({4, 3}));
  EXPECT_FLOAT_EQ(cat[3 * 3 + 2], 5.0f);

  Attrs sattrs;
  sattrs.Set("axis", static_cast<int64_t>(1));
  sattrs.Set("start", static_cast<int64_t>(1));
  sattrs.Set("end", static_cast<int64_t>(3));
  const Tensor sliced = OpRegistry::Instance().Get("slice").Forward({ref_, tin, sattrs});
  EXPECT_EQ(sliced.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(sliced[0], 1.0f);
  EXPECT_FLOAT_EQ(sliced[3], 5.0f);
}

TEST_F(OpsTest, MaskedFillWritesValue) {
  const Tensor x = RandTensor(Shape{8}, 19);
  Tensor mask = Tensor::Zeros(Shape{8});
  mask.mutable_values()[2] = 1.0f;
  mask.mutable_values()[5] = 1.0f;
  Attrs attrs;
  attrs.Set("value", -1e9);
  const std::vector<Tensor> inputs = {x, mask};
  const Tensor y = OpRegistry::Instance().Get("masked_fill").Forward({ref_, inputs, attrs});
  for (int64_t i = 0; i < 8; ++i) {
    if (i == 2 || i == 5) {
      EXPECT_FLOAT_EQ(y[i], -1e9f);
    } else {
      EXPECT_FLOAT_EQ(y[i], x[i]);
    }
  }
}

// ------------------------- cross-device bound soundness ----------------------------

struct SoundnessCase {
  std::string op;
  std::vector<Shape> shapes;
  Attrs attrs;
  float scale = 1.0f;
};

class BoundSoundnessTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { RegisterAllOps(); }
};

std::vector<SoundnessCase> SoundnessCases() {
  std::vector<SoundnessCase> cases;
  cases.push_back({"add", {Shape{128}, Shape{128}}, {}, 1.0f});
  cases.push_back({"mul", {Shape{128}, Shape{128}}, {}, 1.0f});
  cases.push_back({"exp", {Shape{256}}, {}, 1.0f});
  cases.push_back({"tanh", {Shape{256}}, {}, 1.0f});
  cases.push_back({"gelu", {Shape{256}}, {}, 1.5f});
  cases.push_back({"silu", {Shape{256}}, {}, 1.5f});
  {
    Attrs a;
    a.Set("axis", static_cast<int64_t>(-1));
    cases.push_back({"softmax", {Shape{8, 64}}, a, 2.0f});
  }
  cases.push_back({"matmul", {Shape{16, 64}, Shape{64, 16}}, {}, 1.0f});
  cases.push_back({"bmm", {Shape{4, 8, 32}, Shape{4, 32, 8}}, {}, 1.0f});
  cases.push_back({"linear", {Shape{8, 64}, Shape{16, 64}, Shape{16}}, {}, 1.0f});
  {
    Attrs a;
    a.Set("eps", 1e-5);
    cases.push_back({"layer_norm", {Shape{4, 64}, Shape{64}, Shape{64}}, a, 1.0f});
  }
  {
    Attrs a;
    a.Set("eps", 1e-6);
    cases.push_back({"rms_norm", {Shape{4, 64}, Shape{64}}, a, 1.0f});
  }
  {
    Attrs a;
    a.Set("stride", static_cast<int64_t>(1));
    a.Set("padding", static_cast<int64_t>(1));
    cases.push_back({"conv2d", {Shape{1, 4, 8, 8}, Shape{4, 4, 3, 3}, Shape{4}}, a, 1.0f});
  }
  {
    Attrs a;
    a.Set("axis", static_cast<int64_t>(-1));
    cases.push_back({"sum", {Shape{8, 256}}, a, 1.0f});
    cases.push_back({"mean", {Shape{8, 256}}, a, 1.0f});
  }
  {
    Attrs a;
    a.Set("kernel", static_cast<int64_t>(2));
    a.Set("stride", static_cast<int64_t>(2));
    cases.push_back({"avg_pool2d", {Shape{1, 2, 8, 8}}, a, 1.0f});
  }
  {
    Attrs a;
    a.Set("groups", static_cast<int64_t>(2));
    a.Set("eps", 1e-5);
    cases.push_back({"group_norm", {Shape{2, 4, 6, 6}, Shape{4}, Shape{4}}, a, 1.0f});
  }
  return cases;
}

TEST_P(BoundSoundnessTest, DeterministicBoundsCoverCrossDeviceDeviation) {
  const SoundnessCase c = SoundnessCases()[static_cast<size_t>(GetParam())];
  std::vector<Tensor> inputs;
  for (size_t i = 0; i < c.shapes.size(); ++i) {
    inputs.push_back(RandTensor(c.shapes[i], 100 + GetParam() * 10 + i, c.scale));
  }
  // batch_norm-style stat inputs must be positive; handled in the dedicated test below.
  const int64_t checked =
      CheckCrossDeviceSoundness(c.op, inputs, c.attrs, BoundMode::kDeterministic);
  EXPECT_GT(checked, 0);
}

TEST_P(BoundSoundnessTest, ProbabilisticBoundsRarelyViolated) {
  const SoundnessCase c = SoundnessCases()[static_cast<size_t>(GetParam())];
  std::vector<Tensor> inputs;
  for (size_t i = 0; i < c.shapes.size(); ++i) {
    inputs.push_back(RandTensor(c.shapes[i], 200 + GetParam() * 10 + i, c.scale));
  }
  int64_t violations = 0;
  const int64_t checked =
      CheckCrossDeviceSoundness(c.op, inputs, c.attrs, BoundMode::kProbabilistic, &violations);
  // lambda = 4 gives >= 99.93% per-reduction confidence; real violations are far rarer
  // because mixed signs cancel. Allow 0.1%.
  EXPECT_LE(violations, std::max<int64_t>(1, checked / 1000)) << c.op;
}

INSTANTIATE_TEST_SUITE_P(AllOps, BoundSoundnessTest,
                         ::testing::Range(0, static_cast<int>(SoundnessCases().size())));

TEST_F(OpsTest, BatchNormSoundnessWithPositiveVariance) {
  Rng rng(42);
  const Tensor x = Tensor::Randn(Shape{2, 4, 5, 5}, rng);
  const Tensor w = Tensor::Randn(Shape{4}, rng);
  const Tensor b = Tensor::Randn(Shape{4}, rng);
  const Tensor mean = Tensor::Randn(Shape{4}, rng);
  const Tensor var = Tensor::Uniform(Shape{4}, rng, 0.25f, 2.0f);
  Attrs attrs;
  attrs.Set("eps", 1e-5);
  CheckCrossDeviceSoundness("batch_norm", {x, w, b, mean, var}, attrs,
                            BoundMode::kDeterministic);
}

TEST_F(OpsTest, ProbabilisticBoundTighterThanDeterministicForReductions) {
  const Tensor a = RandTensor(Shape{8, 512}, 77);
  const Tensor b = RandTensor(Shape{512, 8}, 78);
  const OpKernel& matmul = OpRegistry::Instance().Get("matmul");
  const std::vector<Tensor> inputs = {a, b};
  const Tensor out = matmul.Forward({ref_, inputs, {}});
  const DTensor det =
      matmul.Bound({ref_, inputs, out, {}, BoundMode::kDeterministic, kDefaultLambda});
  const DTensor prob =
      matmul.Bound({ref_, inputs, out, {}, BoundMode::kProbabilistic, kDefaultLambda});
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_LT(prob[i], det[i]);
  }
}

TEST_F(OpsTest, DataMovementOpsHaveZeroBound) {
  const Tensor x = RandTensor(Shape{2, 3, 4}, 80);
  for (const std::string op : {"reshape", "flatten", "transpose", "dropout", "identity"}) {
    Attrs attrs;
    if (op == "reshape") {
      attrs.Set("shape", std::vector<int64_t>{6, 4});
    } else if (op == "transpose") {
      attrs.Set("perm", std::vector<int64_t>{2, 0, 1});
    }
    const OpKernel& kernel = OpRegistry::Instance().Get(op);
    const std::vector<Tensor> inputs = {x};
    const Tensor out = kernel.Forward({ref_, inputs, attrs});
    const DTensor bound =
        kernel.Bound({ref_, inputs, out, attrs, BoundMode::kDeterministic, kDefaultLambda});
    for (int64_t i = 0; i < bound.numel(); ++i) {
      EXPECT_EQ(bound[i], 0.0) << op;
    }
  }
}

// --------------------------- SIMD backend equivalence ------------------------------
//
// The vectorized backend (src/device/simd.h) claims bitwise identity with the scalar
// fixed-tree loops. These sweeps check the claim where it matters: whole operator
// forwards and bound templates on the fleet's vector-eligible profile, and full
// zoo-model traces. Bitwise-equal outputs imply equal result commitments (C0 hashes
// exact FP32 bytes), so a passing sweep means dispatch can never change a verdict.

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.values().data(), b.values().data(),
                     a.values().size() * sizeof(float)) == 0;
}

bool BitwiseEqualD(const DTensor& a, const DTensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.values().data(), b.values().data(),
                     a.values().size() * sizeof(double)) == 0;
}

std::vector<SoundnessCase> SimdSweepCases() {
  std::vector<SoundnessCase> cases = SoundnessCases();
  // Remainder-lane shapes: inner dimensions not divisible by 8 and below-8 tails.
  cases.push_back({"matmul", {Shape{9, 37}, Shape{37, 11}}, {}, 1.0f});
  cases.push_back({"matmul", {Shape{5, 7}, Shape{7, 3}}, {}, 1.0f});
  cases.push_back({"bmm", {Shape{3, 6, 29}, Shape{3, 29, 5}}, {}, 1.0f});
  cases.push_back({"linear", {Shape{6, 83}, Shape{13, 83}, Shape{13}}, {}, 1.0f});
  {
    Attrs a;
    a.Set("axis", static_cast<int64_t>(-1));
    cases.push_back({"softmax", {Shape{7, 101}}, a, 3.0f});
    cases.push_back({"sum", {Shape{5, 999}}, a, 1.0f});
    cases.push_back({"mean", {Shape{5, 999}}, a, 1.0f});
  }
  {
    Attrs a;
    a.Set("eps", 1e-5);
    cases.push_back({"layer_norm", {Shape{3, 77}, Shape{77}, Shape{77}}, a, 2.0f});
  }
  {
    Attrs a;
    a.Set("out_h", static_cast<int64_t>(3));
    a.Set("out_w", static_cast<int64_t>(5));
    cases.push_back({"adaptive_avg_pool2d", {Shape{2, 3, 11, 13}}, a, 1.0f});
  }
  {
    Attrs a;
    a.Set("kernel", static_cast<int64_t>(3));
    a.Set("stride", static_cast<int64_t>(2));
    cases.push_back({"avg_pool2d", {Shape{2, 3, 13, 13}}, a, 1.0f});
  }
  cases.push_back({"relu", {Shape{1001}}, {}, 1.0f});
  cases.push_back({"neg", {Shape{1001}}, {}, 1.0f});
  cases.push_back({"sub", {Shape{515}, Shape{515}}, {}, 1.0f});
  cases.push_back({"div", {Shape{515}, Shape{515}}, {}, 1.0f});
  // Transcendentals route through src/device/vmath.h: odd lengths cross the
  // AVX2 body's scalar tail, scale 3 pushes samples into the clamp regions.
  cases.push_back({"exp", {Shape{1003}}, {}, 3.0f});
  cases.push_back({"tanh", {Shape{1003}}, {}, 3.0f});
  cases.push_back({"gelu", {Shape{1003}}, {}, 3.0f});
  cases.push_back({"silu", {Shape{1003}}, {}, 3.0f});
  return cases;
}

class SimdOpSweepTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    RegisterAllOps();
    if (!SimdBackendSupported(SimdBackend::kAvx2)) {
      GTEST_SKIP() << "AVX2 unavailable; only the scalar backend exists here";
    }
  }
};

TEST_P(SimdOpSweepTest, ForwardAndBoundBitwiseScalarVsSimd) {
  const SoundnessCase c = SimdSweepCases()[static_cast<size_t>(GetParam())];
  std::vector<Tensor> inputs;
  for (size_t i = 0; i < c.shapes.size(); ++i) {
    inputs.push_back(RandTensor(c.shapes[i], 300 + GetParam() * 10 + i, c.scale));
  }
  // RTX6000 carries kStridedVector — the one profile whose reductions dispatch to
  // the vector backend.
  const DeviceProfile& device = DeviceRegistry::ByName("RTX6000");
  ASSERT_TRUE(device.vector_eligible());
  const OpKernel& kernel = OpRegistry::Instance().Get(c.op);
  Tensor out_scalar, out_simd;
  DTensor bound_scalar, bound_simd;
  {
    ScopedSimdBackend force(SimdBackend::kScalar);
    out_scalar = kernel.Forward({device, inputs, c.attrs});
    bound_scalar = kernel.Bound({device, inputs, out_scalar, c.attrs,
                                 BoundMode::kDeterministic, kDefaultLambda});
  }
  {
    ScopedSimdBackend force(SimdBackend::kAvx2);
    out_simd = kernel.Forward({device, inputs, c.attrs});
    bound_simd = kernel.Bound({device, inputs, out_simd, c.attrs,
                               BoundMode::kDeterministic, kDefaultLambda});
  }
  EXPECT_TRUE(BitwiseEqual(out_scalar, out_simd)) << c.op;
  EXPECT_TRUE(BitwiseEqualD(bound_scalar, bound_simd)) << c.op;
}

INSTANTIATE_TEST_SUITE_P(AllOps, SimdOpSweepTest,
                         ::testing::Range(0, static_cast<int>(SimdSweepCases().size())));

TEST(SimdZooTraceTest, FullTracesAndBoundsBitwiseStableAcrossBackends) {
  if (!SimdBackendSupported(SimdBackend::kAvx2)) {
    GTEST_SKIP() << "AVX2 unavailable; only the scalar backend exists here";
  }
  RegisterAllOps();
  const DeviceProfile& device = DeviceRegistry::ByName("RTX6000");
  ExecutorOptions options;
  options.with_bounds = true;
  options.bound_mode = BoundMode::kDeterministic;
  for (const Model& model : {BuildBertMini(), BuildResNetMini()}) {
    Rng rng(0x700d);
    const std::vector<Tensor> input = model.sample_input(rng);
    const Executor exec(*model.graph, device);
    ExecutionTrace scalar_trace, simd_trace;
    {
      ScopedSimdBackend force(SimdBackend::kScalar);
      scalar_trace = exec.Run(input, options);
    }
    {
      ScopedSimdBackend force(SimdBackend::kAvx2);
      simd_trace = exec.Run(input, options);
    }
    for (const NodeId id : model.graph->op_nodes()) {
      ASSERT_TRUE(BitwiseEqual(scalar_trace.value(id), simd_trace.value(id)))
          << model.name << " node " << id;
      ASSERT_TRUE(BitwiseEqualD(scalar_trace.bound(id), simd_trace.bound(id)))
          << model.name << " node " << id;
    }
    // Equal per-node values means equal canonical serializations, hence equal C0
    // result commitments and identical threshold verdicts for any challenger.
  }
}

TEST(VmathZooTraceTest, TracesAndBoundsBackendInvariantOnScalarOnlyProfile) {
  // The H100 profile is NOT vector-eligible: its reductions never dispatch to the
  // SIMD backend, so the ONLY backend-sensitive code on this profile is vmath's
  // AVX2-vs-scalar dispatch. Bitwise-equal full-model traces here isolate the
  // vmath bitwise-identity claim from the reduction-tree one SimdZooTraceTest
  // already holds.
  if (!SimdBackendSupported(SimdBackend::kAvx2)) {
    GTEST_SKIP() << "AVX2 unavailable; only the scalar backend exists here";
  }
  RegisterAllOps();
  const DeviceProfile& device = DeviceRegistry::ByName("H100");
  ASSERT_FALSE(device.vector_eligible());
  ExecutorOptions options;
  options.with_bounds = true;
  options.bound_mode = BoundMode::kDeterministic;
  for (const Model& model : {BuildBertMini(), BuildResNetMini()}) {
    Rng rng(0x3a7);
    const std::vector<Tensor> input = model.sample_input(rng);
    const Executor exec(*model.graph, device);
    ExecutionTrace scalar_trace, simd_trace;
    {
      ScopedSimdBackend force(SimdBackend::kScalar);
      scalar_trace = exec.Run(input, options);
    }
    {
      ScopedSimdBackend force(SimdBackend::kAvx2);
      simd_trace = exec.Run(input, options);
    }
    for (const NodeId id : model.graph->op_nodes()) {
      ASSERT_TRUE(BitwiseEqual(scalar_trace.value(id), simd_trace.value(id)))
          << model.name << " node " << id;
      ASSERT_TRUE(BitwiseEqualD(scalar_trace.bound(id), simd_trace.bound(id)))
          << model.name << " node " << id;
    }
  }
}

TEST_F(OpsTest, RegistryContainsAllPaperOperators) {
  // Appendix A.3 operator inventory (modulo naming).
  for (const std::string op :
       {"add", "sub", "mul", "div", "pow", "neg", "sqrt", "rsqrt", "exp", "log", "sin",
        "cos", "tanh", "relu", "gelu", "silu", "softmax", "batch_norm", "layer_norm",
        "group_norm", "rms_norm", "matmul", "bmm", "linear", "conv2d", "mean", "sum",
        "adaptive_avg_pool2d", "max_pool2d", "avg_pool2d", "interpolate", "concat", "slice",
        "flatten", "reshape", "transpose", "masked_fill", "embedding", "reduce_max",
        "reduce_min", "dropout", "identity"}) {
    EXPECT_TRUE(OpRegistry::Instance().Contains(op)) << op;
  }
}

}  // namespace
}  // namespace tao
