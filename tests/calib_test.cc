// Calibration pipeline tests: grid/profile correctness, envelope dominance, threshold
// scaling, Eq. 15 checks (honest runs pass, perturbed runs flag), cap-curve
// properties, threshold commitments, and Appendix-B stability diagnostics.

#include <cmath>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/calib/stability.h"
#include "src/graph/executor.h"
#include "src/models/model_zoo.h"

namespace tao {
namespace {

// Small shared calibration fixture over the BERT mini (cached across tests: the
// calibration itself is the expensive step).
class CalibFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new Model(BuildBertMini());
    CalibrateOptions options;
    options.num_samples = 6;
    calibration_ = new Calibration(Calibrate(*model_, DeviceRegistry::Fleet(), options));
    thresholds_ = new ThresholdSet(calibration_->MakeThresholds(3.0));
  }

  static void TearDownTestSuite() {
    delete thresholds_;
    delete calibration_;
    delete model_;
    thresholds_ = nullptr;
    calibration_ = nullptr;
    model_ = nullptr;
  }

  static Model* model_;
  static Calibration* calibration_;
  static ThresholdSet* thresholds_;
};

Model* CalibFixture::model_ = nullptr;
Calibration* CalibFixture::calibration_ = nullptr;
ThresholdSet* CalibFixture::thresholds_ = nullptr;

TEST(PercentileGridTest, MatchesPaperGrid) {
  const auto& grid = PercentileGrid();
  EXPECT_EQ(grid.front(), 0.0);
  EXPECT_EQ(grid.back(), 100.0);
  EXPECT_NE(std::find(grid.begin(), grid.end(), 1.0), grid.end());
  EXPECT_NE(std::find(grid.begin(), grid.end(), 99.0), grid.end());
  for (double p = 5.0; p <= 95.0; p += 5.0) {
    EXPECT_NE(std::find(grid.begin(), grid.end(), p), grid.end()) << p;
  }
  for (size_t i = 1; i < grid.size(); ++i) {
    EXPECT_LT(grid[i - 1], grid[i]);
  }
}

TEST(ProfileTest, MonotoneNondecreasing) {
  Rng rng(1);
  std::vector<double> errors;
  for (int i = 0; i < 1000; ++i) {
    errors.push_back(std::abs(rng.NextGaussian()));
  }
  const auto profile = ComputeProfile(errors);
  for (size_t i = 1; i < profile.size(); ++i) {
    EXPECT_GE(profile[i], profile[i - 1]);
  }
}

TEST_F(CalibFixture, EveryOperatorCalibrated) {
  EXPECT_EQ(calibration_->nodes.size(), static_cast<size_t>(model_->graph->num_ops()));
  EXPECT_EQ(thresholds_->size(), static_cast<size_t>(model_->graph->num_ops()));
}

TEST_F(CalibFixture, EnvelopeDominatesEverySampleProfile) {
  for (const auto& [id, nc] : calibration_->nodes) {
    for (const auto& profile : nc.abs_profiles) {
      for (size_t g = 0; g < profile.size(); ++g) {
        EXPECT_LE(profile[g], nc.abs_envelope[g]) << "node " << id;
      }
    }
  }
}

TEST_F(CalibFixture, ThresholdsAreAlphaTimesEnvelope) {
  for (const auto& [id, nc] : calibration_->nodes) {
    const OpThreshold& tau = thresholds_->node(id);
    for (size_t g = 0; g < nc.abs_envelope.size(); ++g) {
      EXPECT_DOUBLE_EQ(tau.abs[g], 3.0 * nc.abs_envelope[g]);
      EXPECT_DOUBLE_EQ(tau.rel[g], 3.0 * nc.rel_envelope[g]);
    }
  }
}

TEST_F(CalibFixture, MostOperatorsSeeNonzeroCrossDeviceError) {
  int nonzero = 0;
  for (const auto& [id, nc] : calibration_->nodes) {
    if (nc.abs_envelope.back() > 0.0) {
      ++nonzero;
    }
  }
  EXPECT_GT(nonzero, model_->graph->num_ops() / 2);
}

TEST_F(CalibFixture, HonestCrossDeviceRunPassesThresholds) {
  // A fresh input (not in the calibration set) on two fleet devices must pass Eq. 15
  // at every operator: this is the paper's zero-false-positive property.
  Rng rng(0x5eed);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const Executor a(*model_->graph, DeviceRegistry::ByName("H100"));
  const Executor b(*model_->graph, DeviceRegistry::ByName("RTX4090"));
  const ExecutionTrace ta = a.Run(input);
  const ExecutionTrace tb = b.Run(input);
  for (const NodeId id : model_->graph->op_nodes()) {
    EXPECT_FALSE(thresholds_->Exceeds(id, ta.value(id), tb.value(id)))
        << model_->graph->node(id).label
        << " ratio=" << thresholds_->MaxRatio(id, ta.value(id), tb.value(id));
  }
}

TEST_F(CalibFixture, InjectedPerturbationExceedsThresholds) {
  Rng rng(0xfeed);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const NodeId target = model_->graph->op_nodes()[model_->graph->num_ops() / 2];
  const Executor exec(*model_->graph, DeviceRegistry::ByName("H100"));
  const ExecutionTrace honest = exec.Run(input);
  Tensor delta = Tensor::Full(model_->graph->node(target).shape, 1e-2f);
  const ExecutionTrace bad = exec.RunPerturbed(input, {{target, delta}});
  const Executor ref(*model_->graph, DeviceRegistry::Reference());
  const ExecutionTrace reference = ref.Run(input);
  EXPECT_TRUE(thresholds_->Exceeds(target, bad.value(target), reference.value(target)));
  EXPECT_FALSE(thresholds_->Exceeds(target, honest.value(target), reference.value(target)));
}

TEST_F(CalibFixture, ScaledThresholdsLoosenChecks) {
  const ThresholdSet loose = thresholds_->Scaled(2.0);
  for (const auto id : model_->graph->op_nodes()) {
    const OpThreshold& base = thresholds_->node(id);
    const OpThreshold& scaled = loose.node(id);
    for (size_t g = 0; g < base.abs.size(); ++g) {
      EXPECT_DOUBLE_EQ(scaled.abs[g], 2.0 * base.abs[g]);
    }
  }
  EXPECT_DOUBLE_EQ(loose.alpha(), 6.0);
}

TEST_F(CalibFixture, CapCurveIsMonotoneAndAnchoredAtZero) {
  const NodeId id = model_->graph->op_nodes()[3];
  EXPECT_DOUBLE_EQ(thresholds_->AbsCap(id, 0.0), 0.0);
  double prev = 0.0;
  for (double r = 0.0; r <= 1.0; r += 0.01) {
    const double cap = thresholds_->AbsCap(id, r);
    EXPECT_GE(cap, prev - 1e-18);
    prev = cap;
  }
  EXPECT_GE(thresholds_->AbsCap(id, 1.0), thresholds_->node(id).abs.back() - 1e-18);
}

TEST_F(CalibFixture, CommitRootIsStableAndTamperEvident) {
  const Digest root1 = thresholds_->CommitRoot();
  const Digest root2 = thresholds_->CommitRoot();
  EXPECT_EQ(DigestToHex(root1), DigestToHex(root2));
  const ThresholdSet scaled = thresholds_->Scaled(1.0000001);
  EXPECT_NE(DigestToHex(scaled.CommitRoot()), DigestToHex(root1));
}

TEST_F(CalibFixture, StabilityDiagnosticsSmallForHonestCalibration)
{
  // Appendix-B expectation: central tendencies ~0 and small upper deciles.
  for (const size_t grid_index : {6u, 10u, 14u}) {  // ~p30, p50, p70 on the grid
    const StabilitySummary s = SummarizeStability(*calibration_, grid_index);
    EXPECT_LE(s.supnorm_p50, 0.5);
    EXPECT_LE(s.jackknife_p50, 0.5);
    EXPECT_LE(s.tailadj_p50, 0.5);
    EXPECT_GE(s.supnorm_p90, s.supnorm_p50);
  }
}

TEST(StabilityUnitTest, ConstantSequenceIsPerfectlyStable) {
  const std::vector<double> sequence(20, 3.5);
  EXPECT_DOUBLE_EQ(SupNormDrift(sequence), 0.0);
  EXPECT_DOUBLE_EQ(JackknifeInfluence(sequence), 0.0);
  EXPECT_DOUBLE_EQ(TailAdjustment(sequence), 0.0);
  EXPECT_DOUBLE_EQ(RollingSd(sequence), 0.0);
}

TEST(StabilityUnitTest, OutlierRaisesJackknife) {
  // Short sequence where removing the outlier shifts the median: {1,2,3,4,100}.
  const std::vector<double> sequence = {1.0, 2.0, 3.0, 4.0, 100.0};
  EXPECT_GT(JackknifeInfluence(sequence), 0.0);
}

TEST(StabilityUnitTest, DriftingSequenceHasPositiveSupNorm) {
  std::vector<double> sequence;
  for (int t = 0; t < 30; ++t) {
    sequence.push_back(1.0 + 0.1 * t);
  }
  EXPECT_GT(SupNormDrift(sequence), 0.01);
  EXPECT_GT(RollingSd(sequence), 0.0);
}

}  // namespace
}  // namespace tao
