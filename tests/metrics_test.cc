// MetricsRegistry / NamedCounters unit suite: scope namespacing and
// collision-freedom, the AggregateSnapshots fold semantics (sums vs max-gauges vs
// recomputed rates), the recent-latency ring's wraparound, the cumulative
// histogram export, and the durability flush/fsync latency counters.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/service/metrics.h"

namespace tao {
namespace {

double ValueOf(const std::vector<NamedCounter>& counters, const std::string& name) {
  for (const NamedCounter& counter : counters) {
    if (counter.name == name) {
      return counter.value;
    }
  }
  ADD_FAILURE() << "missing counter: " << name;
  return -1.0;
}

bool Has(const std::vector<NamedCounter>& counters, const std::string& name) {
  return std::any_of(counters.begin(), counters.end(),
                     [&name](const NamedCounter& c) { return c.name == name; });
}

TEST(NamedCountersTest, ScopePrefixesEveryNameAndEmptyScopeAddsNone) {
  MetricsSnapshot snapshot;
  snapshot.accepted = 3;
  const std::vector<NamedCounter> scoped = NamedCounters(snapshot, "model/3");
  for (const NamedCounter& counter : scoped) {
    EXPECT_EQ(counter.name.rfind("model/3/", 0), 0u) << counter.name;
  }
  EXPECT_EQ(ValueOf(scoped, "model/3/claims/accepted"), 3.0);

  const std::vector<NamedCounter> bare = NamedCounters(snapshot, "");
  EXPECT_EQ(ValueOf(bare, "claims/accepted"), 3.0);
  for (const NamedCounter& counter : bare) {
    EXPECT_NE(counter.name.front(), '/') << counter.name;
  }
}

TEST(NamedCountersTest, NamesAreCollisionFreeWithinAndAcrossScopes) {
  MetricsSnapshot snapshot;
  snapshot.latency_hist_us[0] = 1;  // makes the histogram export non-trivial
  std::set<std::string> names;
  for (const char* scope : {"model/1", "model/2", "aggregate"}) {
    for (const NamedCounter& counter : NamedCounters(snapshot, scope)) {
      EXPECT_TRUE(names.insert(counter.name).second)
          << "duplicate counter name: " << counter.name;
    }
  }
}

TEST(NamedCountersTest, CumulativeHistogramExportFoldsTrailingZeros) {
  MetricsSnapshot snapshot;
  // Buckets 0, 2, 3 populated -> le_2, le_4, le_8, le_16 emitted (cumulative),
  // nothing beyond bucket 3, plus the total count.
  snapshot.latency_hist_us[0] = 4;
  snapshot.latency_hist_us[2] = 2;
  snapshot.latency_hist_us[3] = 1;
  const std::vector<NamedCounter> counters = NamedCounters(snapshot, "");
  EXPECT_EQ(ValueOf(counters, "latency/hist_us/le_2"), 4.0);
  EXPECT_EQ(ValueOf(counters, "latency/hist_us/le_4"), 4.0);
  EXPECT_EQ(ValueOf(counters, "latency/hist_us/le_8"), 6.0);
  EXPECT_EQ(ValueOf(counters, "latency/hist_us/le_16"), 7.0);
  EXPECT_FALSE(Has(counters, "latency/hist_us/le_32")) << "trailing zeros must fold";
  EXPECT_EQ(ValueOf(counters, "latency/hist_us/count"), 7.0);
  // An empty histogram still exports the count (zero) but no buckets beyond the
  // first.
  const std::vector<NamedCounter> empty = NamedCounters(MetricsSnapshot{}, "");
  EXPECT_EQ(ValueOf(empty, "latency/hist_us/count"), 0.0);
}

TEST(NamedCountersTest, DurabilityLatencyCountersDeriveTotalsAndMeans) {
  MetricsSnapshot snapshot;
  snapshot.durability_flushes = 4;
  snapshot.durability_fsyncs = 2;
  snapshot.durability_flush_ns = 8'000'000;   // 8 ms over 4 flushes
  snapshot.durability_fsync_ns = 10'000'000;  // 10 ms over 2 fsyncs
  const std::vector<NamedCounter> counters = NamedCounters(snapshot, "");
  EXPECT_DOUBLE_EQ(ValueOf(counters, "durability/flush_seconds_total"), 0.008);
  EXPECT_DOUBLE_EQ(ValueOf(counters, "durability/fsync_seconds_total"), 0.010);
  EXPECT_DOUBLE_EQ(ValueOf(counters, "durability/flush_ms_mean"), 2.0);
  EXPECT_DOUBLE_EQ(ValueOf(counters, "durability/fsync_ms_mean"), 5.0);
  // No flushes -> means report 0 rather than dividing by zero.
  const std::vector<NamedCounter> idle = NamedCounters(MetricsSnapshot{}, "");
  EXPECT_EQ(ValueOf(idle, "durability/flush_ms_mean"), 0.0);
  EXPECT_EQ(ValueOf(idle, "durability/fsync_ms_mean"), 0.0);
}

TEST(AggregateSnapshotsTest, SumsCountersMaxesGaugesAndRecomputesRates) {
  MetricsSnapshot a;
  a.submitted = 10;
  a.accepted = 8;
  a.rejected = 2;
  a.completed = 8;
  a.queue_depth = 3;
  a.peak_queue_depth = 7;
  a.batches_dispatched = 4;
  a.disputes_run = 1;
  a.elapsed_seconds = 2.0;
  a.durability_flush_ns = 100;
  a.latency_hist_us[5] = 8;
  a.batch_size_hist[1] = 4;

  MetricsSnapshot b;
  b.submitted = 4;
  b.accepted = 4;
  b.completed = 4;
  b.queue_depth = 1;
  b.peak_queue_depth = 2;
  b.batches_dispatched = 2;
  b.elapsed_seconds = 4.0;
  b.durability_fsync_ns = 50;
  b.latency_hist_us[5] = 4;

  const MetricsSnapshot total = AggregateSnapshots({a, b});
  EXPECT_EQ(total.submitted, 14);
  EXPECT_EQ(total.accepted, 12);
  EXPECT_EQ(total.rejected, 2);
  EXPECT_EQ(total.completed, 12);
  EXPECT_EQ(total.queue_depth, 4) << "live depths add across services";
  EXPECT_EQ(total.peak_queue_depth, 7)
      << "peaks are max-gauges: summing disjoint-time peaks would fabricate a "
         "high-water mark that never existed";
  EXPECT_EQ(total.batches_dispatched, 6);
  EXPECT_EQ(total.disputes_run, 1);
  EXPECT_EQ(total.durability_flush_ns, 100);
  EXPECT_EQ(total.durability_fsync_ns, 50);
  EXPECT_EQ(total.latency_hist_us[5], 12);
  EXPECT_EQ(total.batch_size_hist[1], 4);
  // The rate window spans the union: elapsed = max, claims/sec recomputed.
  EXPECT_DOUBLE_EQ(total.elapsed_seconds, 4.0);
  EXPECT_DOUBLE_EQ(total.claims_per_second, 3.0);
  // Folding nothing is a zero snapshot, not a crash.
  EXPECT_EQ(AggregateSnapshots({}).submitted, 0);
}

TEST(MetricsRegistryTest, SnapshotKeepsCompletedWithinAccepted) {
  MetricsRegistry registry;
  registry.RecordSubmission(true);
  registry.RecordSubmission(true);
  registry.RecordSubmission(false);
  registry.RecordSloShed();
  registry.RecordDispatch(2);
  registry.RecordVerdict(0.001, /*dispute_ran=*/true);
  const MetricsSnapshot snapshot = registry.Snapshot(/*queue_depth=*/1,
                                                     /*peak_queue_depth=*/2);
  EXPECT_EQ(snapshot.submitted, 3);
  EXPECT_EQ(snapshot.accepted, 2);
  EXPECT_EQ(snapshot.rejected, 1);
  EXPECT_EQ(snapshot.shed_slo, 1);
  EXPECT_EQ(snapshot.completed, 1);
  EXPECT_LE(snapshot.completed, snapshot.accepted);
  EXPECT_EQ(snapshot.claims_in_flight, 1);
  EXPECT_EQ(snapshot.disputes_run, 1);
  EXPECT_GT(snapshot.elapsed_seconds, 0.0);
}

TEST(MetricsRegistryTest, RecentLatencyWindowForgetsOldBursts) {
  MetricsRegistry registry;
  // An old burst of slow verdicts (~0.13 s -> a high bucket) ...
  for (size_t i = 0; i < kSloLatencyWindow; ++i) {
    registry.RecordVerdict(0.13, false);
  }
  EXPECT_GT(registry.RecentLatencyPercentileMillis(0.99), 100.0);
  // ... then a full window of fast verdicts (~20 us). The ring has wrapped: the
  // recent percentile must see ONLY the fast window, while the cumulative
  // histogram (which never decays) still remembers the burst.
  for (size_t i = 0; i < kSloLatencyWindow; ++i) {
    registry.RecordVerdict(20e-6, false);
  }
  EXPECT_LT(registry.RecentLatencyPercentileMillis(0.99), 1.0);
  const MetricsSnapshot snapshot = registry.Snapshot(0, 0);
  EXPECT_GT(snapshot.LatencyPercentileMillis(0.99), 100.0)
      << "the cumulative histogram must still hold the old burst";
  EXPECT_EQ(snapshot.completed, static_cast<int64_t>(2 * kSloLatencyWindow));
}

TEST(MetricsRegistryTest, PartiallyFilledWindowUsesOnlyValidEntries) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.RecentLatencyPercentileMillis(0.5), 0.0) << "no verdicts yet";
  registry.RecordVerdict(0.004, false);  // 4 ms
  const double p50 = registry.RecentLatencyPercentileMillis(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LT(p50, 20.0);
}

TEST(NamedCountersTest, LatencyPercentilesAndQueueDepthAreFirstClassCounters) {
  MetricsSnapshot snapshot;
  snapshot.queue_depth = 5;
  // 10 verdicts in bucket 3 ([8, 16) us): p50 and p99 both report the bucket's
  // upper bound, 16 us = 0.016 ms.
  snapshot.latency_hist_us[3] = 10;
  const std::vector<NamedCounter> counters = NamedCounters(snapshot, "");
  EXPECT_EQ(ValueOf(counters, "queue/depth"), 5.0);
  EXPECT_DOUBLE_EQ(ValueOf(counters, "latency/p50_ms"), 0.016);
  EXPECT_DOUBLE_EQ(ValueOf(counters, "latency/p99_ms"), 0.016);
}

}  // namespace
}  // namespace tao
