// Tests for SHA-256 (against FIPS 180-4 known-answer vectors), canonical hashing, and
// Merkle trees with inclusion proofs.

#include <cmath>

#include <gtest/gtest.h>

#include "src/crypto/canonical.h"
#include "src/crypto/merkle.h"
#include "src/crypto/sha256.h"
#include "src/util/rng.h"

namespace tao {
namespace {

TEST(Sha256Test, KnownAnswerEmpty) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, KnownAnswerAbc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, KnownAnswerTwoBlockMessage) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(
                std::string("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, KnownAnswerMillionA) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    ctx.Update(chunk);
  }
  EXPECT_EQ(DigestToHex(ctx.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  const std::string msg = "tolerance-aware optimistic verification";
  Sha256 ctx;
  ctx.Update(msg.substr(0, 10));
  ctx.Update(msg.substr(10));
  EXPECT_EQ(DigestToHex(ctx.Finalize()), DigestToHex(Sha256::Hash(msg)));
}

TEST(CanonicalTest, HashSensitiveToValues) {
  Tensor a = Tensor::Full(Shape{4}, 1.0f);
  Tensor b = a.Clone();
  EXPECT_EQ(DigestToHex(HashTensor(a)), DigestToHex(HashTensor(b)));
  b.mutable_values()[3] = std::nextafterf(1.0f, 2.0f);
  EXPECT_NE(DigestToHex(HashTensor(a)), DigestToHex(HashTensor(b)));
}

TEST(CanonicalTest, HashSensitiveToShape) {
  const Tensor a = Tensor::Arange(6).WithShape(Shape{2, 3});
  const Tensor b = Tensor::Arange(6).WithShape(Shape{3, 2});
  EXPECT_NE(DigestToHex(HashTensor(a)), DigestToHex(HashTensor(b)));
}

TEST(CanonicalTest, TensorListOrderMatters) {
  const Tensor a = Tensor::Full(Shape{2}, 1.0f);
  const Tensor b = Tensor::Full(Shape{2}, 2.0f);
  EXPECT_NE(DigestToHex(HashTensorList({a, b})), DigestToHex(HashTensorList({b, a})));
}

std::vector<Digest> MakeLeaves(size_t n, uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<Digest> leaves;
  leaves.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string s = "leaf-" + std::to_string(rng.NextU64());
    leaves.push_back(Sha256::Hash(s));
  }
  return leaves;
}

TEST(MerkleTest, SingleLeafRootIsLeaf) {
  const auto leaves = MakeLeaves(1);
  const MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
}

TEST(MerkleTest, InclusionProofsVerifyForAllLeaves) {
  for (const size_t n : {1u, 2u, 3u, 4u, 7u, 8u, 33u, 100u}) {
    const auto leaves = MakeLeaves(n, n);
    const MerkleTree tree(leaves);
    for (size_t i = 0; i < n; ++i) {
      const MerkleProof proof = tree.ProveInclusion(i);
      EXPECT_TRUE(MerkleTree::VerifyInclusion(tree.root(), leaves[i], proof))
          << "n=" << n << " leaf=" << i;
    }
  }
}

TEST(MerkleTest, WrongLeafFailsVerification) {
  const auto leaves = MakeLeaves(8);
  const MerkleTree tree(leaves);
  const MerkleProof proof = tree.ProveInclusion(3);
  EXPECT_FALSE(MerkleTree::VerifyInclusion(tree.root(), leaves[4], proof));
}

TEST(MerkleTest, TamperedProofFailsVerification) {
  const auto leaves = MakeLeaves(16);
  const MerkleTree tree(leaves);
  MerkleProof proof = tree.ProveInclusion(5);
  proof.path[1].sibling[0] ^= 0x01;
  EXPECT_FALSE(MerkleTree::VerifyInclusion(tree.root(), leaves[5], proof));
}

TEST(MerkleTest, RootChangesWhenAnyLeafChanges) {
  auto leaves = MakeLeaves(10);
  const MerkleTree before(leaves);
  leaves[7][0] ^= 0xff;
  const MerkleTree after(leaves);
  EXPECT_NE(DigestToHex(before.root()), DigestToHex(after.root()));
}

TEST(MerkleTest, ProofDepthIsLogarithmic) {
  const auto leaves = MakeLeaves(64);
  const MerkleTree tree(leaves);
  EXPECT_EQ(tree.ProveInclusion(0).path.size(), 6u);
}

class MerkleParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleParamTest, AllProofsRoundTrip) {
  const size_t n = GetParam();
  const auto leaves = MakeLeaves(n, 1000 + n);
  const MerkleTree tree(leaves);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(MerkleTree::VerifyInclusion(tree.root(), leaves[i], tree.ProveInclusion(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleParamTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace tao
