// Edge-case and robustness tests across modules: numerically extreme operator inputs,
// broadcasting corners, gamma-function domain behaviour, attrs canonicalization,
// subgraph frontiers on branching graphs, gas-schedule arithmetic, and adjudication
// corner cases.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/graph/executor.h"
#include "src/graph/subgraph.h"
#include "src/ops/attrs.h"
#include "src/ops/broadcast.h"
#include "src/ops/op_kernel.h"
#include "src/protocol/gas.h"
#include "src/util/rng.h"

namespace tao {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterAllOps(); }
  const DeviceProfile& ref_ = DeviceRegistry::Reference();
};

// ------------------------------ numeric extremes -----------------------------------

TEST_F(EdgeCaseTest, SoftmaxWithLargeLogitsIsStable) {
  // The max-subtraction in the softmax template must prevent overflow.
  Tensor x = Tensor::Zeros(Shape{1, 8});
  x.mutable_values()[0] = 80.0f;
  x.mutable_values()[1] = -80.0f;
  x.mutable_values()[2] = 79.5f;
  Attrs attrs;
  attrs.Set("axis", static_cast<int64_t>(-1));
  const std::vector<Tensor> inputs = {x};
  const Tensor y = OpRegistry::Instance().Get("softmax").Forward({ref_, inputs, attrs});
  double sum = 0.0;
  for (const float v : y.values()) {
    ASSERT_TRUE(std::isfinite(v));
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST_F(EdgeCaseTest, SoftmaxBoundFiniteForLargeLogits) {
  Tensor x = Tensor::Zeros(Shape{1, 8});
  x.mutable_values()[0] = 60.0f;
  Attrs attrs;
  attrs.Set("axis", static_cast<int64_t>(-1));
  const std::vector<Tensor> inputs = {x};
  const OpKernel& softmax = OpRegistry::Instance().Get("softmax");
  const Tensor y = softmax.Forward({ref_, inputs, attrs});
  const DTensor tau =
      softmax.Bound({ref_, inputs, y, attrs, BoundMode::kProbabilistic, kDefaultLambda});
  for (const double t : tau.values()) {
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GE(t, 0.0);
  }
}

TEST_F(EdgeCaseTest, LayerNormOnConstantRowUsesEps) {
  // Zero-variance input: eps keeps rsqrt finite; output is all-bias.
  const Tensor x = Tensor::Full(Shape{1, 16}, 2.5f);
  const Tensor w = Tensor::Full(Shape{16}, 1.0f);
  const Tensor b = Tensor::Full(Shape{16}, 0.75f);
  Attrs attrs;
  attrs.Set("eps", 1e-5);
  const std::vector<Tensor> inputs = {x, w, b};
  const Tensor y = OpRegistry::Instance().Get("layer_norm").Forward({ref_, inputs, attrs});
  for (const float v : y.values()) {
    EXPECT_NEAR(v, 0.75f, 1e-4f);
  }
}

TEST_F(EdgeCaseTest, ReluBoundaryAtExactZero) {
  Tensor x = Tensor::Zeros(Shape{3});
  x.mutable_values()[0] = -0.0f;
  x.mutable_values()[1] = 0.0f;
  x.mutable_values()[2] = std::numeric_limits<float>::denorm_min();
  const std::vector<Tensor> inputs = {x};
  const Tensor y = OpRegistry::Instance().Get("relu").Forward({ref_, inputs, {}});
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_GT(y[2], 0.0f);
}

TEST_F(EdgeCaseTest, MatmulWithZeroDimension) {
  const Tensor a = Tensor::Zeros(Shape{3, 4});
  const Tensor b = Tensor::Zeros(Shape{4, 2});
  const std::vector<Tensor> inputs = {a, b};
  const Tensor y = OpRegistry::Instance().Get("matmul").Forward({ref_, inputs, {}});
  for (const float v : y.values()) {
    EXPECT_EQ(v, 0.0f);
  }
}

// ------------------------------ broadcasting corners -------------------------------

TEST(BroadcastTest, ScalarBroadcastsToAnything) {
  EXPECT_EQ(BroadcastShape(Shape{1}, Shape{3, 4, 5}), Shape({3, 4, 5}));
  EXPECT_EQ(BroadcastShape(Shape{3, 4, 5}, Shape{1}), Shape({3, 4, 5}));
}

TEST(BroadcastTest, MixedOnesExpandBothWays) {
  EXPECT_EQ(BroadcastShape(Shape{3, 1, 5}, Shape{1, 4, 1}), Shape({3, 4, 5}));
}

TEST(BroadcastTest, RankExtensionOnLeft) {
  EXPECT_EQ(BroadcastShape(Shape{5}, Shape{2, 3, 5}), Shape({2, 3, 5}));
}

TEST(BroadcastTest, IndexerMapsBroadcastAxesToZeroStride) {
  const Shape out{2, 3};
  const Shape in{3};
  const BroadcastIndexer indexer(out, in);
  EXPECT_EQ(indexer.MapOffset(0), 0);
  EXPECT_EQ(indexer.MapOffset(3), 0);  // second row maps back to the same vector
  EXPECT_EQ(indexer.MapOffset(5), 2);
}

TEST(BroadcastTest, ReduceGradSumsOverBroadcastAxes) {
  Tensor grad = Tensor::Full(Shape{4, 3}, 1.0f);
  const Tensor reduced = ReduceGradToShape(grad, Shape{3});
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(reduced[i], 4.0f);
  }
}

TEST(BroadcastTest, IncompatibleShapesAbort) {
  EXPECT_DEATH(BroadcastShape(Shape{3}, Shape{4}), "cannot broadcast");
}

// ------------------------------ gamma-function domain -------------------------------

TEST(GammaTest, ZeroAndNegativeKGiveZero) {
  EXPECT_EQ(Gamma(0), 0.0);
  EXPECT_EQ(Gamma(-5), 0.0);
  EXPECT_EQ(GammaTilde(0), 0.0);
}

TEST(GammaTest, MonotoneInK) {
  double prev = 0.0;
  for (int64_t k = 1; k < 100000; k *= 3) {
    const double g = Gamma(k);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(GammaTest, FirstOrderMatchesKuForSmallK) {
  EXPECT_NEAR(Gamma(10), 10 * kUnitRoundoff, 1e-12);
  EXPECT_NEAR(GammaTilde(1, 4.0), 4.0 * kUnitRoundoff, 1e-10);
}

TEST(GammaTest, ConfidenceIncreasesWithLambda) {
  double prev = -1.0;
  for (double lambda = 1.0; lambda <= 6.0; lambda += 1.0) {
    const double c = GammaTildeConfidence(lambda);
    EXPECT_GT(c, prev);
    prev = c;
  }
  EXPECT_GT(GammaTildeConfidence(4.0), 0.999);
}

// --------------------------------- attrs ------------------------------------------

TEST(AttrsTest, CanonicalIsSortedAndTypeTagged) {
  Attrs a;
  a.Set("zeta", static_cast<int64_t>(1));
  a.Set("alpha", 2.5);
  a.Set("mid", std::vector<int64_t>{3, 4});
  const std::string canon = a.Canonical();
  EXPECT_LT(canon.find("alpha"), canon.find("mid"));
  EXPECT_LT(canon.find("mid"), canon.find("zeta"));
  EXPECT_NE(canon.find("[3 4]"), std::string::npos);
}

TEST(AttrsTest, CanonicalDiffersOnValueChange) {
  Attrs a;
  a.Set("eps", 1e-5);
  Attrs b;
  b.Set("eps", 1e-6);
  EXPECT_NE(a.Canonical(), b.Canonical());
}

TEST(AttrsTest, FallbacksAndEquality) {
  Attrs a;
  EXPECT_EQ(a.GetInt("missing", 7), 7);
  EXPECT_EQ(a.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(a.GetString("missing", "x"), "x");
  Attrs b;
  EXPECT_TRUE(a == b);
  b.Set("k", static_cast<int64_t>(1));
  EXPECT_FALSE(a == b);
}

// ------------------------------ branching subgraphs --------------------------------

TEST_F(EdgeCaseTest, FrontierOfBranchingGraph) {
  // x -> a -> b ; a -> c ; (b, c) -> d. Slice {b} has live_in {a}, live_out {b}.
  Graph g;
  const NodeId x = g.AddInput("x", Shape{4});
  const NodeId a = g.AddOp("tanh", "a", {x});
  const NodeId b = g.AddOp("exp", "b", {a});
  const NodeId c = g.AddOp("neg", "c", {a});
  g.AddOp("add", "d", {b, c});

  const Frontier fb = ComputeFrontier(g, Slice{1, 2});  // just "b"
  ASSERT_EQ(fb.live_in.size(), 1u);
  EXPECT_EQ(fb.live_in[0], a);
  ASSERT_EQ(fb.live_out.size(), 1u);
  EXPECT_EQ(fb.live_out[0], b);

  // Slice {a} is consumed by two later ops but appears once in live_out.
  const Frontier fa = ComputeFrontier(g, Slice{0, 1});
  ASSERT_EQ(fa.live_out.size(), 1u);
  EXPECT_EQ(fa.live_out[0], a);

  // Slice {b, c} has a single (deduplicated) live_in.
  const Frontier fbc = ComputeFrontier(g, Slice{1, 3});
  ASSERT_EQ(fbc.live_in.size(), 1u);
  EXPECT_EQ(fbc.live_in[0], a);
  EXPECT_EQ(fbc.live_out.size(), 2u);
}

TEST_F(EdgeCaseTest, ExecuteSliceAbortsOnMissingBoundary) {
  Graph g;
  const NodeId x = g.AddInput("x", Shape{4});
  g.AddOp("tanh", "a", {x});
  g.AddOp("exp", "b", {g.op_nodes()[0]});
  const std::map<NodeId, Tensor> empty;
  EXPECT_DEATH(ExecuteSlice(g, DeviceRegistry::Reference(), Slice{0, 2}, empty),
               "missing live-in");
}

// ---------------------------------- gas schedule -----------------------------------

TEST(GasScheduleTest, RoundCostScalesLinearlyInChildren) {
  const GasSchedule s;
  EXPECT_EQ(s.RoundCost(2), s.partition_base + 2 * s.per_child + s.selection);
  EXPECT_EQ(s.RoundCost(16) - s.RoundCost(2), 14 * s.per_child);
}

TEST(GasScheduleTest, PaperCalibration) {
  // The Table 3 decomposition: ~88.7 kgas per 2-way round and ~1.0086 Mgas fixed.
  const GasSchedule s;
  EXPECT_EQ(s.RoundCost(2), 88700);
  EXPECT_EQ(s.commit + s.open_challenge + s.leaf_adjudication + s.settlement, 1008700);
  // 11 rounds at N=2 -> the paper's 1984.4 kgas BERT dispute.
  EXPECT_EQ(s.commit + s.open_challenge + 11 * s.RoundCost(2) + s.leaf_adjudication +
                s.settlement,
            1984400);
}

TEST(GasMeterTest, AccumulatesAndResets) {
  GasMeter meter;
  meter.Charge(1500);
  meter.Charge(500);
  EXPECT_EQ(meter.total(), 2000);
  EXPECT_DOUBLE_EQ(meter.total_kgas(), 2.0);
  meter.Reset();
  EXPECT_EQ(meter.total(), 0);
}

// ------------------------------ device profile corners ------------------------------

TEST(DeviceEdgeTest, SingleElementReductionExact) {
  const std::vector<float> one = {3.14f};
  for (const DeviceProfile& d : DeviceRegistry::Fleet()) {
    EXPECT_EQ(d.Accumulate(one), 3.14f) << d.name;
  }
}

TEST(DeviceEdgeTest, StridedWithFewerElementsThanLanes) {
  DeviceProfile d = DeviceRegistry::ByName("RTX6000");  // 8 lanes
  const std::vector<float> xs = {1.0f, 2.0f, 3.0f};
  EXPECT_EQ(d.Accumulate(xs), 6.0f);
}

TEST(DeviceEdgeTest, BlockedWithBlockLargerThanInput) {
  DeviceProfile d = DeviceRegistry::ByName("A100");  // block 128
  std::vector<float> xs(10, 1.0f);
  EXPECT_EQ(d.Accumulate(xs), 10.0f);
}

}  // namespace
}  // namespace tao
