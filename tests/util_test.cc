// Unit tests for src/util: RNG determinism and distributions, statistics, tables.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace tao {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedWithinBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(5);
  const auto perm = rng.Permutation(100);
  std::vector<bool> seen(100, false);
  for (const size_t p : perm) {
    ASSERT_LT(p, 100u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(9);
  Rng child = parent.Fork();
  // Child stream should not equal a fresh parent-seeded stream element-for-element.
  Rng parent_again(9);
  (void)parent_again.NextU64();  // consume the value that seeded the fork
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.NextU64() == parent_again.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(StatsTest, PercentileMatchesLinearInterpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 1.75);
}

TEST(StatsTest, PercentileSingleElement) {
  const std::vector<double> v = {3.5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 57.0), 3.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 3.5);
}

TEST(StatsTest, PercentilesBatchedMatchesSingle) {
  std::vector<double> v;
  Rng rng(13);
  for (int i = 0; i < 257; ++i) {
    v.push_back(rng.NextGaussian());
  }
  const std::vector<double> ps = {0, 1, 5, 25, 50, 75, 95, 99, 100};
  const auto batched = Percentiles(v, ps);
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], Percentile(v, ps[i]));
  }
}

TEST(StatsTest, PercentileIsMonotoneInP) {
  std::vector<double> v;
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    v.push_back(rng.NextDouble());
  }
  double prev = Percentile(v, 0.0);
  for (double p = 1.0; p <= 100.0; p += 1.0) {
    const double cur = Percentile(v, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(StatsTest, MeanMedianStdDev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Median(v), 4.5);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, BoxStatsFiveNumberSummary) {
  const std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const BoxStats box = ComputeBoxStats(v);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.median, 5.0);
  EXPECT_DOUBLE_EQ(box.max, 9.0);
  EXPECT_DOUBLE_EQ(box.q1, 3.0);
  EXPECT_DOUBLE_EQ(box.q3, 7.0);
  EXPECT_EQ(box.n, 9u);
}

TEST(StatsTest, RunningMediansIncremental) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0};
  const auto medians = RunningMedians(v);
  ASSERT_EQ(medians.size(), 4u);
  EXPECT_DOUBLE_EQ(medians[0], 5.0);
  EXPECT_DOUBLE_EQ(medians[1], 3.0);
  EXPECT_DOUBLE_EQ(medians[2], 3.0);
  EXPECT_DOUBLE_EQ(medians[3], 2.5);
}

TEST(StatsTest, RollingMediansWindow) {
  const std::vector<double> v = {1, 9, 2, 8, 3};
  const auto rolled = RollingMedians(v, 3);
  ASSERT_EQ(rolled.size(), 3u);
  EXPECT_DOUBLE_EQ(rolled[0], 2.0);  // {1,9,2}
  EXPECT_DOUBLE_EQ(rolled[1], 8.0);  // {9,2,8}
  EXPECT_DOUBLE_EQ(rolled[2], 3.0);  // {2,8,3}
}

TEST(StatsTest, RollingMediansTooShortReturnsEmpty) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_TRUE(RollingMedians(v, 3).empty());
}

TEST(StatsTest, SymmetricRelChangeProperties) {
  EXPECT_DOUBLE_EQ(SymmetricRelChange(1.0, 1.0), 0.0);
  EXPECT_NEAR(SymmetricRelChange(1.0, 3.0), 2.0 * 2.0 / 4.0, 1e-9);
  // Symmetry.
  EXPECT_DOUBLE_EQ(SymmetricRelChange(2.0, 5.0), SymmetricRelChange(5.0, 2.0));
}

TEST(TableTest, RendersHeaderAndRows) {
  TablePrinter table({"model", "ASR"});
  table.AddRow({"BERT", "0.0%"});
  table.AddRow({"Qwen-mini", "2.4%"});
  const std::string rendered = table.Render();
  EXPECT_NE(rendered.find("model"), std::string::npos);
  EXPECT_NE(rendered.find("Qwen-mini"), std::string::npos);
  EXPECT_NE(rendered.find("2.4%"), std::string::npos);
  // Header + rule + 2 rows = 4 lines.
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 4);
}

TEST(TableTest, NumericFormatters) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Scientific(0.000123, 2), "1.23e-04");
  EXPECT_EQ(TablePrinter::Pct(0.024, 1), "2.4%");
}

}  // namespace
}  // namespace tao
