// Shared cohort generator for the batch/service/shard suites: a deterministic
// marketplace-style claim mix (honest/cheating x supervised/unsupervised). All
// suites draw from the SAME Rng consumption pattern — input, proposer device,
// cheat draw (+ site and delta on a forked stream), supervision draw (+ verifier
// device) — so a given (seed, rates) pair names one bitwise-stable workload
// everywhere it appears.

#ifndef TAO_TESTS_TEST_CLAIMS_H_
#define TAO_TESTS_TEST_CLAIMS_H_

#include <vector>

#include "src/protocol/batch_verifier.h"

namespace tao {

inline std::vector<BatchClaim> MakeTestClaims(const Model& model, size_t count,
                                              uint64_t seed, double cheat_rate,
                                              double supervised_rate) {
  const Graph& graph = *model.graph;
  const auto& fleet = DeviceRegistry::Fleet();
  Rng rng(seed);
  std::vector<BatchClaim> claims;
  claims.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    BatchClaim claim;
    claim.inputs = model.sample_input(rng);
    claim.proposer_device = &fleet[rng.NextBounded(fleet.size())];
    if (rng.NextDouble() < cheat_rate) {
      const NodeId site =
          graph.op_nodes()[rng.NextBounded(static_cast<uint64_t>(graph.num_ops() - 1))];
      Rng delta_rng(rng.NextU64());
      claim.perturbations.push_back(
          {site, Tensor::Randn(graph.node(site).shape, delta_rng, 5e-2f)});
    }
    if (rng.NextDouble() < supervised_rate) {
      claim.verifier_device = &fleet[rng.NextBounded(fleet.size())];
    }
    claims.push_back(std::move(claim));
  }
  return claims;
}

}  // namespace tao

#endif  // TAO_TESTS_TEST_CLAIMS_H_
