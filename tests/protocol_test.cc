// Protocol tests: commitments, coordinator state machine, economics, leaf
// adjudication, and the end-to-end dispute game — honest runs finalize, perturbations
// are localized to the exact injected operator and slashed, honest proposers survive
// spurious challenges, and round counts follow O(log_N |V|).

#include <cmath>

#include <gtest/gtest.h>

#include "src/calib/calibrator.h"
#include "src/protocol/adjudication.h"
#include "src/protocol/commitment.h"
#include "src/protocol/coordinator.h"
#include "src/protocol/dispute.h"
#include "src/protocol/economics.h"

namespace tao {
namespace {

// Shared expensive fixture: BERT mini, calibrated thresholds, and a model commitment.
class ProtocolFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new Model(BuildBertMini());
    CalibrateOptions options;
    options.num_samples = 6;
    const Calibration calibration = Calibrate(*model_, DeviceRegistry::Fleet(), options);
    thresholds_ = new ThresholdSet(calibration.MakeThresholds(3.0));
    commitment_ = new ModelCommitment(*model_->graph, *thresholds_);
  }

  static void TearDownTestSuite() {
    delete commitment_;
    delete thresholds_;
    delete model_;
    commitment_ = nullptr;
    thresholds_ = nullptr;
    model_ = nullptr;
  }

  static Model* model_;
  static ThresholdSet* thresholds_;
  static ModelCommitment* commitment_;
};

Model* ProtocolFixture::model_ = nullptr;
ThresholdSet* ProtocolFixture::thresholds_ = nullptr;
ModelCommitment* ProtocolFixture::commitment_ = nullptr;

// ---------------------------------- commitments ------------------------------------

TEST_F(ProtocolFixture, WeightProofsVerify) {
  for (const NodeId id : model_->graph->param_nodes()) {
    EXPECT_TRUE(commitment_->VerifyWeight(*model_->graph, id, commitment_->ProveWeight(id)));
  }
}

TEST_F(ProtocolFixture, SignatureProofsVerify) {
  for (const NodeId id : model_->graph->op_nodes()) {
    EXPECT_TRUE(
        commitment_->VerifySignature(*model_->graph, id, commitment_->ProveSignature(id)));
  }
}

TEST_F(ProtocolFixture, WrongProofNodeFailsVerification) {
  const NodeId a = model_->graph->param_nodes()[0];
  const NodeId b = model_->graph->param_nodes()[1];
  EXPECT_FALSE(commitment_->VerifyWeight(*model_->graph, b, commitment_->ProveWeight(a)));
}

TEST_F(ProtocolFixture, ResultCommitmentBindsOutput) {
  Rng rng(1);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const Executor exec(*model_->graph, DeviceRegistry::ByName("H100"));
  const Tensor y = exec.RunOutput(input);
  ResultMeta meta;
  meta.device = "H100";
  const Digest c0 = ComputeResultCommitment(*commitment_, input, y, meta);
  Tensor tampered = y.Clone();
  tampered.mutable_values()[0] += 1e-3f;
  const Digest c0_tampered = ComputeResultCommitment(*commitment_, input, tampered, meta);
  EXPECT_NE(DigestToHex(c0), DigestToHex(c0_tampered));
  meta.device = "A100";
  EXPECT_NE(DigestToHex(ComputeResultCommitment(*commitment_, input, y, meta)),
            DigestToHex(c0));
}

// ---------------------------------- coordinator ------------------------------------

TEST(CoordinatorTest, HappyPathFinalizesAfterWindow) {
  Coordinator coordinator;
  const Digest c0 = Sha256::Hash(std::string("claim"));
  const ClaimId id = coordinator.SubmitCommitment(c0, 50, 10.0);
  EXPECT_EQ(coordinator.TryFinalize(id), ClaimState::kCommitted);
  coordinator.AdvanceTime(49);
  EXPECT_EQ(coordinator.TryFinalize(id), ClaimState::kCommitted);
  coordinator.AdvanceTime(1);
  EXPECT_EQ(coordinator.TryFinalize(id), ClaimState::kFinalized);
  EXPECT_DOUBLE_EQ(coordinator.balances().proposer, 0.0);  // bond escrowed then returned
}

TEST(CoordinatorTest, ChallengeAfterWindowRejected) {
  Coordinator coordinator;
  const ClaimId id = coordinator.SubmitCommitment(Sha256::Hash(std::string("x")), 10, 5.0);
  coordinator.AdvanceTime(11);
  EXPECT_DEATH(coordinator.OpenChallenge(id, 1.0), "challenge window closed");
}

TEST(CoordinatorTest, SlashingMovesBonds) {
  Coordinator coordinator;
  const ClaimId id = coordinator.SubmitCommitment(Sha256::Hash(std::string("y")), 100, 10.0);
  coordinator.OpenChallenge(id, 2.0);
  coordinator.RecordLeafAdjudication(id, /*proposer_guilty=*/true, 0.5);
  EXPECT_EQ(coordinator.claim(id).state, ClaimState::kProposerSlashed);
  // Challenger got bond back + half the proposer bond; remainder burned.
  EXPECT_DOUBLE_EQ(coordinator.balances().challenger, 5.0);
  EXPECT_DOUBLE_EQ(coordinator.balances().treasury, 5.0);
  EXPECT_DOUBLE_EQ(coordinator.balances().proposer, -10.0);
}

TEST(CoordinatorTest, FailedChallengeRefundsProposer) {
  Coordinator coordinator;
  const ClaimId id = coordinator.SubmitCommitment(Sha256::Hash(std::string("z")), 100, 10.0);
  coordinator.OpenChallenge(id, 2.0);
  coordinator.RecordLeafAdjudication(id, /*proposer_guilty=*/false, 0.5);
  EXPECT_EQ(coordinator.claim(id).state, ClaimState::kChallengerSlashed);
  EXPECT_DOUBLE_EQ(coordinator.balances().proposer, 2.0);   // own bond + challenger's
  EXPECT_DOUBLE_EQ(coordinator.balances().challenger, -2.0);
}

TEST(CoordinatorTest, TimeoutLosesRound) {
  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/5);
  const ClaimId id = coordinator.SubmitCommitment(Sha256::Hash(std::string("t")), 100, 10.0);
  coordinator.OpenChallenge(id, 2.0);
  coordinator.AdvanceTime(6);
  coordinator.RecordTimeout(id, /*proposer_timed_out=*/true);
  EXPECT_EQ(coordinator.claim(id).state, ClaimState::kProposerSlashed);
}

TEST(CoordinatorTest, GasAccumulatesPerAction) {
  const GasSchedule schedule;
  Coordinator coordinator(schedule);
  const ClaimId id = coordinator.SubmitCommitment(Sha256::Hash(std::string("g")), 100, 10.0);
  coordinator.OpenChallenge(id, 2.0);
  coordinator.RecordPartition(id, 2, {Sha256::Hash(std::string("a")),
                                      Sha256::Hash(std::string("b"))});
  coordinator.RecordSelection(id, 0);
  coordinator.RecordLeafAdjudication(id, true, 0.5);
  EXPECT_EQ(coordinator.gas().total(),
            schedule.commit + schedule.open_challenge + schedule.PartitionCost(2) +
                schedule.selection + schedule.leaf_adjudication + schedule.settlement);
}

// ----------------------------------- economics -------------------------------------

TEST(EconomicsTest, DefaultParametersAreIncentiveCompatible) {
  const EconomicParams params;
  EXPECT_TRUE(IncentiveCompatible(params));
  const FeasibleRegion region = ComputeFeasibleRegion(params);
  EXPECT_TRUE(region.non_empty);
  EXPECT_GT(params.slash, region.lower);
  EXPECT_LE(params.slash, region.upper);
}

TEST(EconomicsTest, DetectionProbabilityFormula) {
  EconomicParams params;
  params.audit_prob = 0.2;
  params.challenge_prob = 0.3;
  params.false_negative = 0.1;
  EXPECT_NEAR(DetectionProbability(params), 0.5 * 0.9, 1e-12);
}

TEST(EconomicsTest, HonestyDominatesCheapCheatAboveL1) {
  EconomicParams params;
  const FeasibleRegion region = ComputeFeasibleRegion(params);
  params.slash = region.lower * 1.01;
  EXPECT_GT(ProposerUtilityHonest(params), ProposerUtilityCheapCheat(params));
  params.slash = region.l1 * 0.5;  // below the cheap-cheat deterrence bound
  EXPECT_LE(ProposerUtilityHonest(params), ProposerUtilityCheapCheat(params));
}

TEST(EconomicsTest, SpamChallengesUnprofitable) {
  const EconomicParams params;
  EXPECT_LE(ChallengerUtilityVsClean(params), 0.0);
  EXPECT_GT(ChallengerUtilityVsGuilty(params), 0.0);
}

TEST(EconomicsTest, RegionEmptyWhenDetectionTooWeak) {
  EconomicParams params;
  params.audit_prob = 0.0;
  params.challenge_prob = 0.001;
  params.proposer_deposit = 10.0;
  const FeasibleRegion region = ComputeFeasibleRegion(params);
  EXPECT_FALSE(region.non_empty);  // L1 = 0.8/0.00099 >> D_p
}

TEST(EconomicsTest, TargetedCheatingUnprofitableWhenCostExceedsReward) {
  const EconomicParams params;
  EXPECT_LT(ProposerUtilityTargetedCheat(params), 0.0);
}

// ------------------------------- leaf adjudication ----------------------------------

TEST_F(ProtocolFixture, LeafHonestOutputAcquitsViaCommittee) {
  const Graph& g = *model_->graph;
  Rng rng(7);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const Executor exec(g, DeviceRegistry::ByName("H100"));
  const ExecutionTrace trace = exec.Run(input);
  // Pick a mid-graph linear op and adjudicate its honest (H100) output.
  NodeId target = -1;
  for (const NodeId id : g.op_nodes()) {
    if (g.node(id).op == "linear" && id > g.op_nodes()[g.num_ops() / 2]) {
      target = id;
      break;
    }
  }
  ASSERT_GE(target, 0);
  std::vector<Tensor> leaf_inputs;
  for (const NodeId in : g.node(target).inputs) {
    leaf_inputs.push_back(trace.value(in));
  }
  const LeafVerdict verdict =
      AdjudicateLeaf(g, target, leaf_inputs, trace.value(target), *thresholds_);
  EXPECT_FALSE(verdict.proposer_guilty);
  EXPECT_EQ(verdict.path, LeafPath::kCommitteeVote);
}

TEST_F(ProtocolFixture, LeafLargePerturbationCaughtByTheoreticalBound) {
  const Graph& g = *model_->graph;
  Rng rng(8);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const Executor exec(g, DeviceRegistry::ByName("H100"));
  const ExecutionTrace trace = exec.Run(input);
  NodeId target = -1;
  for (const NodeId id : g.op_nodes()) {
    if (g.node(id).op == "linear") {
      target = id;
      break;
    }
  }
  ASSERT_GE(target, 0);
  std::vector<Tensor> leaf_inputs;
  for (const NodeId in : g.node(target).inputs) {
    leaf_inputs.push_back(trace.value(in));
  }
  Tensor tampered = trace.value(target).Clone();
  tampered.mutable_values()[0] += 0.1f;
  const LeafVerdict verdict = AdjudicateLeaf(g, target, leaf_inputs, tampered, *thresholds_);
  EXPECT_TRUE(verdict.proposer_guilty);
  EXPECT_EQ(verdict.path, LeafPath::kTheoreticalBound);
}

TEST_F(ProtocolFixture, LeafTinyPerturbationWithinTheoryCaughtByCommittee) {
  // A deviation under the theoretical cap but over the (much tighter) empirical
  // thresholds must fall through to the committee and be convicted there.
  const Graph& g = *model_->graph;
  Rng rng(9);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const Executor exec(g, DeviceRegistry::ByName("H100"));
  const ExecutionTrace trace = exec.Run(input);
  NodeId target = -1;
  for (const NodeId id : g.op_nodes()) {
    if (g.node(id).op == "linear" && g.node(id).label.find("ffn.fc1") != std::string::npos) {
      target = id;
      break;
    }
  }
  ASSERT_GE(target, 0);
  std::vector<Tensor> leaf_inputs;
  for (const NodeId in : g.node(target).inputs) {
    leaf_inputs.push_back(trace.value(in));
  }
  // Probe upward from a tiny magnitude until we pass the theoretical routing check but
  // exceed empirical thresholds.
  const OpKernel& kernel = OpRegistry::Instance().Get("linear");
  const OpContext fwd{DeviceRegistry::Reference(), leaf_inputs, g.node(target).attrs};
  const Tensor ref = kernel.Forward(fwd);
  const BoundContext bctx{DeviceRegistry::Reference(), leaf_inputs, ref,
                          g.node(target).attrs,        BoundMode::kProbabilistic,
                          kDefaultLambda};
  const DTensor tau = kernel.Bound(bctx);
  double tau_min = 1e9;
  for (const double t : tau.values()) {
    tau_min = std::min(tau_min, t);
  }
  Tensor tampered = ref.Clone();
  for (size_t i = 0; i < tampered.mutable_values().size(); ++i) {
    tampered.mutable_values()[i] += static_cast<float>(0.5 * tau_min);
  }
  const LeafVerdict verdict = AdjudicateLeaf(g, target, leaf_inputs, tampered, *thresholds_);
  if (verdict.path == LeafPath::kCommitteeVote) {
    EXPECT_TRUE(verdict.proposer_guilty)
        << "uniform half-theoretical-cap deviation should violate empirical thresholds";
  }
}

// --------------------------------- dispute game -------------------------------------

TEST_F(ProtocolFixture, HonestRunFinalizesWithoutDispute) {
  Coordinator coordinator;
  DisputeGame game(*model_, *commitment_, *thresholds_, coordinator);
  Rng rng(10);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const DisputeResult result =
      game.Run(input, DeviceRegistry::ByName("H100"), DeviceRegistry::ByName("RTX4090"));
  EXPECT_FALSE(result.challenge_raised);
  EXPECT_EQ(result.final_state, ClaimState::kFinalized);
}

TEST_F(ProtocolFixture, PerturbationLocalizedToExactOperatorAndSlashed) {
  Coordinator coordinator;
  DisputeOptions options;
  options.partition_n = 2;
  DisputeGame game(*model_, *commitment_, *thresholds_, coordinator, options);
  Rng rng(11);
  const std::vector<Tensor> input = model_->sample_input(rng);

  const Graph& g = *model_->graph;
  const NodeId target = g.op_nodes()[g.num_ops() / 3];
  // Non-uniform delta: a constant shift would be legitimately erased by downstream
  // softmax/LayerNorm shift-invariance and never localize.
  Rng delta_rng(99);
  const Tensor delta = Tensor::Randn(g.node(target).shape, delta_rng, 5e-2f);
  const DisputeResult result =
      game.Run(input, DeviceRegistry::ByName("H100"), DeviceRegistry::ByName("RTX4090"),
               {{target, delta}});
  EXPECT_TRUE(result.challenge_raised);
  EXPECT_TRUE(result.proposer_guilty);
  EXPECT_EQ(result.final_state, ClaimState::kProposerSlashed);
  EXPECT_EQ(result.leaf_op, target) << "dispute must localize to the injected operator";
  // O(log2 |V|) rounds.
  const double expected = std::ceil(std::log2(static_cast<double>(g.num_ops())));
  EXPECT_LE(result.rounds, static_cast<int64_t>(expected) + 1);
  EXPECT_GT(result.total_merkle_checks, 0);
  EXPECT_GT(result.gas_used, 1000000);
  EXPECT_GT(result.cost_ratio, 0.1);
  EXPECT_LT(result.cost_ratio, 3.0);
}

TEST_F(ProtocolFixture, SpuriousChallengeSlashesChallenger) {
  // Force a challenge against an honest proposer by shrinking thresholds drastically
  // (a mis-calibrated challenger); the dispute must end with the challenger slashed.
  Coordinator coordinator;
  const ThresholdSet paranoid = thresholds_->Scaled(1e-9);
  DisputeGame game(*model_, *commitment_, paranoid, coordinator);
  Rng rng(12);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const DisputeResult result =
      game.Run(input, DeviceRegistry::ByName("H100"), DeviceRegistry::ByName("RTX4090"));
  if (result.challenge_raised) {
    // With near-zero thresholds every child looks offending, so the game reaches a
    // leaf; the leaf theoretical check against honest outputs must acquit via
    // committee-at-paranoid-thresholds... the proposer must NOT be found guilty by the
    // sound theoretical path.
    EXPECT_NE(result.leaf.path == LeafPath::kTheoreticalBound && result.proposer_guilty,
              true);
  }
}

TEST_F(ProtocolFixture, WiderPartitionReducesRounds) {
  Rng rng(13);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const Graph& g = *model_->graph;
  const NodeId target = g.op_nodes()[2 * g.num_ops() / 3];
  Rng delta_rng(98);
  const Tensor delta = Tensor::Randn(g.node(target).shape, delta_rng, 5e-2f);

  int64_t rounds_n2 = 0;
  int64_t rounds_n8 = 0;
  for (const int64_t n : {2, 8}) {
    Coordinator coordinator;
    DisputeOptions options;
    options.partition_n = n;
    DisputeGame game(*model_, *commitment_, *thresholds_, coordinator, options);
    const DisputeResult result = game.Run(
        input, DeviceRegistry::ByName("A100"), DeviceRegistry::ByName("RTX6000"),
        {{target, delta}});
    ASSERT_TRUE(result.proposer_guilty);
    ASSERT_EQ(result.leaf_op, target);
    (n == 2 ? rounds_n2 : rounds_n8) = result.rounds;
  }
  EXPECT_LT(rounds_n8, rounds_n2);
}

TEST_F(ProtocolFixture, GasMatchesScheduleDecomposition) {
  Coordinator coordinator;
  DisputeGame game(*model_, *commitment_, *thresholds_, coordinator);
  Rng rng(14);
  const std::vector<Tensor> input = model_->sample_input(rng);
  const Graph& g = *model_->graph;
  const NodeId target = g.op_nodes()[g.num_ops() / 2];
  Rng delta_rng(97);
  const Tensor delta = Tensor::Randn(g.node(target).shape, delta_rng, 5e-2f);
  const DisputeResult result = game.Run(
      input, DeviceRegistry::ByName("H100"), DeviceRegistry::ByName("RTX4090"),
      {{target, delta}});
  const GasSchedule& s = coordinator.schedule();
  int64_t expected = s.commit + s.open_challenge + s.leaf_adjudication + s.settlement;
  for (const RoundStats& round : result.round_stats) {
    expected += s.PartitionCost(round.children) + s.selection;
  }
  EXPECT_EQ(result.gas_used, expected);
}

}  // namespace
}  // namespace tao
